"""The DBDC wire protocol: versioned, length-prefixed, CRC-guarded frames.

One protocol implementation serves both deployment shapes.  The payload
codecs here serialize exactly the objects the in-process protocol
exchanges (:class:`~repro.core.models.LocalModel` uploads,
:class:`~repro.core.models.GlobalModel` broadcasts, label queries,
health/metrics probes), and the frame header carries the same CRC-32
stamp :mod:`repro.faults.integrity` gives the simulated network — so a
payload that survives the socket path is admissible, bit for bit, under
:class:`~repro.distributed.network.SimulatedNetwork` accounting and vice
versa.

Frame layout (little-endian, 18-byte header)::

    offset  size  field
    0       4     magic  b"DBDC"
    4       1     protocol version (1 = plain, 2 = trace-context prefixed)
    5       1     frame kind (:class:`FrameKind`)
    6       4     sender site id (int32; -1 = the central server)
    10      4     body length (uint32, capped by ``max_payload``)
    14      4     CRC-32 of the payload (:func:`payload_crc32`)
    18      ...   body bytes

A version-1 body is the payload itself.  A version-2 body carries a
length-prefixed distributed-tracing context before the payload::

    0       1     context length (must be TRACE_CONTEXT_SIZE)
    1       25    trace context (:class:`TraceContext` — 128-bit trace
                  id, 64-bit parent span id, 8-bit flags)
    26      ...   payload bytes

The CRC field covers the *payload only*, never the context prefix: the
stamp must equal the :func:`payload_crc32` the simulated network and the
admission gate compute over the same payload, so turning tracing on
cannot perturb integrity semantics.  ``encode_frame`` without a context
emits exactly the version-1 bytes — the no-trace wire path is
bit-identical by construction.

Every malformed input raises a typed :class:`WireError` subclass —
decoders never hang and never return garbage: short buffers raise
:class:`FrameTruncated` (stream readers treat it as "need more bytes"),
bad magic/version/kind raise their own errors before the payload is
touched, oversized declared lengths raise :class:`FrameTooLarge` without
allocating, and payload bit-flips raise :class:`ChecksumMismatch` (or
are reported to the caller with ``verify_crc=False``, which is how the
service quarantines instead of dropping the connection).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.core.models import GlobalModel, LocalModel, Representative
from repro.faults.integrity import crc_matches, payload_crc32

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "TRACE_PROTOCOL_VERSION",
    "SERVER_ID",
    "DEFAULT_MAX_PAYLOAD",
    "TRACE_CONTEXT_SIZE",
    "TRACE_FLAG_SAMPLED",
    "TraceContext",
    "encode_trace_context",
    "decode_trace_context",
    "FrameKind",
    "Frame",
    "WireError",
    "FrameTruncated",
    "BadMagic",
    "UnsupportedVersion",
    "UnknownFrameKind",
    "FrameTooLarge",
    "ChecksumMismatch",
    "CodecError",
    "payload_crc32",
    "crc_matches",
    "declared_payload_len",
    "encode_frame",
    "decode_frame",
    "encode_local_model",
    "decode_local_model",
    "encode_global_model",
    "decode_global_model",
    "encode_points",
    "decode_points",
    "encode_labels",
    "decode_labels",
    "encode_await_global",
    "decode_await_global",
    "encode_json",
    "decode_json",
    "encode_status",
    "decode_status",
    "decode_status_ext",
    "peek_local_model_site",
    "ModelDelta",
    "encode_round_open",
    "decode_round_open",
    "encode_round_commit",
    "decode_round_commit",
    "encode_delta_request",
    "decode_delta_request",
    "encode_model_delta",
    "decode_model_delta",
    "delta_from_model",
    "apply_model_delta",
]

MAGIC = b"DBDC"
PROTOCOL_VERSION = 1
#: Protocol version of frames carrying a :class:`TraceContext` prefix.
TRACE_PROTOCOL_VERSION = 2
#: Sender id of the central server (mirrors ``repro.distributed.network.SERVER``).
SERVER_ID = -1
#: Default cap on a frame's declared payload length (64 MiB) — a corrupt
#: or hostile length field must not make a reader allocate unboundedly.
DEFAULT_MAX_PAYLOAD = 64 * 1024 * 1024

_HEADER = struct.Struct("<4sBBiII")
HEADER_SIZE = _HEADER.size


class FrameKind(IntEnum):
    """Every frame kind of protocol version 1."""

    ACK = 1            # generic success reply (status + detail strings)
    ERROR = 2          # generic failure reply (status + detail strings)
    LOCAL_MODEL = 3    # site -> server: LocalModel upload
    GLOBAL_MODEL = 4   # server -> site: GlobalModel broadcast
    AWAIT_GLOBAL = 5   # site -> server: block until the global model exists
    LABEL_QUERY = 6    # client -> server: points to classify
    LABEL_REPLY = 7    # server -> client: global label per query point
    HEALTH = 8         # client -> server: liveness/health probe
    HEALTH_REPLY = 9   # server -> client: JSON health document
    METRICS = 10       # client -> server: OpenMetrics snapshot request
    METRICS_REPLY = 11 # server -> client: OpenMetrics exposition text
    SHUTDOWN = 12      # admin -> server: request graceful shutdown
    ROUND_OPEN = 13    # site -> server: open streaming round N
    ROUND_COMMIT = 14  # site -> server: commit streaming round N
    MODEL_DELTA = 15   # request: block until round N commits; reply:
    #                    appended representatives + full label vector
    TRACE_UPLOAD = 16  # site -> server: JSON span forest (or clock probe)
    TRACE_REPLY = 17   # server -> site: JSON clock-probe timestamps


class WireError(Exception):
    """Base class of every wire-protocol violation (typed, never a hang)."""


class FrameTruncated(WireError):
    """The buffer ends before the declared frame does (short read/EOF)."""


class BadMagic(WireError):
    """The frame does not start with ``b"DBDC"``."""


class UnsupportedVersion(WireError):
    """The frame speaks a protocol version this reader does not."""


class UnknownFrameKind(WireError):
    """The frame kind byte names no :class:`FrameKind`."""


class FrameTooLarge(WireError):
    """The declared payload length exceeds the reader's cap."""


class ChecksumMismatch(WireError):
    """The payload does not match the CRC-32 the sender stamped."""


class CodecError(WireError):
    """A payload failed to decode into its typed object."""


#: Flag bit: the sender is actively sampling this trace.
TRACE_FLAG_SAMPLED = 0x01

# 128-bit trace id (as two uint64 halves), 64-bit span id, 8-bit flags.
_TRACE_CONTEXT = struct.Struct("<QQQB")
#: Encoded size of one :class:`TraceContext` (25 bytes).
TRACE_CONTEXT_SIZE = _TRACE_CONTEXT.size
_UINT64_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class TraceContext:
    """The compact distributed-tracing context a version-2 frame carries.

    Attributes:
        trace_id: 128-bit id of the distributed trace this request
            belongs to.
        span_id: 64-bit id of the sender's span that caused the request
            (the *parent* of any server-side span it spawns).
        flags: 8-bit flag field (:data:`TRACE_FLAG_SAMPLED`).
    """

    trace_id: int
    span_id: int
    flags: int = TRACE_FLAG_SAMPLED

    @property
    def sampled(self) -> bool:
        """Whether the sampled flag bit is set."""
        return bool(self.flags & TRACE_FLAG_SAMPLED)


def encode_trace_context(context: TraceContext) -> bytes:
    """Serialize a :class:`TraceContext` (:data:`TRACE_CONTEXT_SIZE` bytes).

    Raises:
        ValueError: when an id or the flags field is out of range.
    """
    if not 0 <= context.trace_id < (1 << 128):
        raise ValueError(f"trace_id out of 128-bit range: {context.trace_id}")
    if not 0 <= context.span_id < (1 << 64):
        raise ValueError(f"span_id out of 64-bit range: {context.span_id}")
    if not 0 <= context.flags < (1 << 8):
        raise ValueError(f"flags out of 8-bit range: {context.flags}")
    return _TRACE_CONTEXT.pack(
        (context.trace_id >> 64) & _UINT64_MASK,
        context.trace_id & _UINT64_MASK,
        context.span_id,
        context.flags,
    )


def decode_trace_context(payload: bytes) -> TraceContext:
    """Inverse of :func:`encode_trace_context`.

    Raises:
        CodecError: when the payload is not exactly
            :data:`TRACE_CONTEXT_SIZE` bytes.
    """
    if len(payload) != TRACE_CONTEXT_SIZE:
        raise CodecError(
            f"trace context is {len(payload)} bytes, "
            f"expected {TRACE_CONTEXT_SIZE}"
        )
    high, low, span_id, flags = _TRACE_CONTEXT.unpack(payload)
    return TraceContext(
        trace_id=(high << 64) | low, span_id=span_id, flags=flags
    )


@dataclass(frozen=True)
class Frame:
    """One decoded frame.

    Attributes:
        kind: the frame kind.
        site_id: sender site id (:data:`SERVER_ID` for the server).
        payload: the (CRC-checked, unless the reader opted out) bytes.
        crc_ok: whether the payload matched the header checksum — always
            true when the reader verifies eagerly; carries the verdict
            when it opted out via ``verify_crc=False``.
        context: the trace context a version-2 frame carried (``None``
            on version-1 frames — the untraced path).
    """

    kind: FrameKind
    site_id: int
    payload: bytes
    crc_ok: bool = True
    context: TraceContext | None = None


def encode_frame(
    kind: FrameKind | int,
    payload: bytes = b"",
    *,
    site_id: int = SERVER_ID,
    context: TraceContext | None = None,
) -> bytes:
    """Assemble one frame: header (with CRC stamp) + body.

    Without ``context`` this emits exactly the protocol-version-1 bytes
    the pre-tracing code emitted — the untraced wire path stays
    bit-identical.  With ``context`` the frame is version 2 and the body
    gains a length-prefixed context block before the payload; the CRC
    still covers the payload alone (see the module docstring).
    """
    kind = FrameKind(kind)
    if context is None:
        return (
            _HEADER.pack(
                MAGIC,
                PROTOCOL_VERSION,
                int(kind),
                int(site_id),
                len(payload),
                payload_crc32(payload),
            )
            + payload
        )
    context_block = encode_trace_context(context)
    body = bytes((len(context_block),)) + context_block + payload
    return (
        _HEADER.pack(
            MAGIC,
            TRACE_PROTOCOL_VERSION,
            int(kind),
            int(site_id),
            len(body),
            payload_crc32(payload),
        )
        + body
    )


def declared_payload_len(header: bytes) -> int:
    """The payload length a frame header declares.

    The one place the header's length field is read outside
    :func:`decode_frame` — stream readers (the service's and the socket
    transport's) that fetch the header and payload separately use this
    instead of re-deriving the field offset, so the header layout has a
    single source of truth and cannot drift.

    Args:
        header: at least the first :data:`HEADER_SIZE` bytes of a frame.

    Raises:
        FrameTruncated: when fewer than :data:`HEADER_SIZE` bytes are
            given (the length field would be garbage).
    """
    if len(header) < HEADER_SIZE:
        raise FrameTruncated(
            f"need {HEADER_SIZE} header bytes, have {len(header)}"
        )
    return int(_HEADER.unpack_from(header, 0)[4])


def decode_frame(
    buffer: bytes,
    *,
    offset: int = 0,
    max_payload: int = DEFAULT_MAX_PAYLOAD,
    verify_crc: bool = True,
) -> tuple[Frame, int]:
    """Decode the frame starting at ``offset`` in ``buffer``.

    Args:
        buffer: raw bytes (may hold several concatenated frames).
        offset: where this frame starts.
        max_payload: reject declared payload lengths above this.
        verify_crc: raise :class:`ChecksumMismatch` on a CRC failure
            (the client default).  With ``False`` the frame is returned
            with ``crc_ok=False`` instead — the server path, which must
            quarantine corrupt uploads rather than drop the connection.

    Returns:
        ``(frame, next_offset)``.

    Raises:
        WireError: typed subclass per violation; :class:`FrameTruncated`
            when the buffer is merely incomplete.
    """
    if len(buffer) - offset < HEADER_SIZE:
        raise FrameTruncated(
            f"need {HEADER_SIZE} header bytes, have {len(buffer) - offset}"
        )
    magic, version, kind_byte, site_id, length, crc = _HEADER.unpack_from(
        buffer, offset
    )
    if magic != MAGIC:
        raise BadMagic(f"bad magic {magic!r}")
    if version not in (PROTOCOL_VERSION, TRACE_PROTOCOL_VERSION):
        raise UnsupportedVersion(
            f"protocol version {version}, expected {PROTOCOL_VERSION} "
            f"or {TRACE_PROTOCOL_VERSION}"
        )
    try:
        kind = FrameKind(kind_byte)
    except ValueError:
        raise UnknownFrameKind(f"unknown frame kind {kind_byte}") from None
    if length > max_payload:
        raise FrameTooLarge(f"declared payload {length} exceeds cap {max_payload}")
    start = offset + HEADER_SIZE
    if len(buffer) - start < length:
        raise FrameTruncated(
            f"declared payload {length}, have {len(buffer) - start}"
        )
    body = bytes(buffer[start : start + length])
    context: TraceContext | None = None
    if version == TRACE_PROTOCOL_VERSION:
        # The context prefix is structural, so parse it before the CRC
        # verdict: a server reading with verify_crc=False still needs
        # the context of a frame it is about to quarantine.
        if length < 1:
            raise CodecError("version-2 frame has no context-length byte")
        ctx_len = body[0]
        if ctx_len != TRACE_CONTEXT_SIZE:
            raise CodecError(
                f"context length {ctx_len}, expected {TRACE_CONTEXT_SIZE}"
            )
        if 1 + ctx_len > length:
            raise CodecError(
                f"context needs {1 + ctx_len} body bytes, declared {length}"
            )
        context = decode_trace_context(body[1 : 1 + ctx_len])
        payload = body[1 + ctx_len :]
    else:
        payload = body
    crc_ok = crc_matches(payload, crc)
    if verify_crc and not crc_ok:
        raise ChecksumMismatch(
            f"payload CRC {payload_crc32(payload):#010x} != header {crc:#010x}"
        )
    return Frame(
        kind=kind,
        site_id=site_id,
        payload=payload,
        crc_ok=crc_ok,
        context=context,
    ), (start + length)


# ----------------------------------------------------------------------
# Payload codecs.  Every decode_* wraps low-level failures (struct
# errors, bad counts, non-finite floats) in CodecError so transports can
# treat "payload would not parse" uniformly.
# ----------------------------------------------------------------------

_LOCAL_HEADER = struct.Struct("<iqdIIIH")  # site, n_objects, eps, min_pts,
#                                            n_reps, dim, scheme length
_GLOBAL_HEADER = struct.Struct("<dIII")    # eps_global, min_pts, n_reps, dim
_ARRAY_HEADER = struct.Struct("<II")       # rows, dim
_COUNT = struct.Struct("<I")
_TIMEOUT = struct.Struct("<d")
_SHORT_STR = struct.Struct("<H")


def _codec_guard(message: str):
    """Decorator: re-raise any decode failure as a :class:`CodecError`."""

    def wrap(fn):
        def inner(payload: bytes, *args, **kwargs):
            try:
                return fn(payload, *args, **kwargs)
            except WireError:
                raise
            except Exception as error:
                raise CodecError(f"{message}: {error}") from error

        inner.__name__ = fn.__name__
        inner.__doc__ = fn.__doc__
        return inner

    return wrap


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise ValueError(f"string too long for the wire ({len(data)} bytes)")
    return _SHORT_STR.pack(len(data)) + data


def _unpack_str(payload: bytes, offset: int) -> tuple[str, int]:
    (length,) = _SHORT_STR.unpack_from(payload, offset)
    offset += _SHORT_STR.size
    if len(payload) - offset < length:
        raise FrameTruncated(f"string of {length} bytes truncated")
    return payload[offset : offset + length].decode("utf-8"), offset + length


def encode_local_model(model: LocalModel) -> bytes:
    """Serialize a full :class:`LocalModel` — unlike the accounting-only
    ``LocalModel.to_bytes``, the metadata (object count, scheme, local
    DBSCAN parameters) rides along, so the server reconstructs exactly
    what the site built."""
    dim = model.representatives[0].point.size if model.representatives else 0
    record = struct.Struct(f"<id{dim}d")
    scheme = model.scheme.encode("utf-8")
    if len(scheme) > 0xFFFF:
        raise ValueError(f"scheme name too long for the wire ({len(scheme)} bytes)")
    chunks = [
        _LOCAL_HEADER.pack(
            model.site_id,
            model.n_objects,
            model.eps_local,
            model.min_pts_local,
            len(model.representatives),
            dim,
            len(scheme),
        ),
        scheme,
    ]
    for rep in model.representatives:
        chunks.append(record.pack(rep.local_cluster_id, rep.eps_range, *rep.point))
    return b"".join(chunks)


@_codec_guard("invalid LocalModel payload")
def decode_local_model(payload: bytes) -> LocalModel:
    """Inverse of :func:`encode_local_model`.

    Raises:
        CodecError: on truncated records, impossible counts, or
            representatives the model layer itself rejects (non-finite
            coordinates, non-positive ε-ranges).
    """
    site_id, n_objects, eps_local, min_pts, n_reps, dim, scheme_len = (
        _LOCAL_HEADER.unpack_from(payload, 0)
    )
    offset = _LOCAL_HEADER.size
    if len(payload) - offset < scheme_len:
        raise CodecError(f"scheme string of {scheme_len} bytes truncated")
    scheme = payload[offset : offset + scheme_len].decode("utf-8")
    offset += scheme_len
    record = struct.Struct(f"<id{dim}d")
    expected = offset + n_reps * record.size
    if len(payload) != expected:
        raise CodecError(
            f"payload is {len(payload)} bytes, header declares {expected}"
        )
    reps = []
    for __ in range(n_reps):
        values = record.unpack_from(payload, offset)
        offset += record.size
        reps.append(
            Representative(
                point=np.asarray(values[2:], dtype=float),
                eps_range=values[1],
                site_id=site_id,
                local_cluster_id=values[0],
            )
        )
    return LocalModel(
        site_id=site_id,
        representatives=reps,
        n_objects=n_objects,
        scheme=scheme,
        eps_local=eps_local,
        min_pts_local=min_pts,
    )


def peek_local_model_site(payload: bytes) -> int | None:
    """The site id of a LOCAL_MODEL payload without a full decode.

    The server's duplicate-resubmission check runs on every session
    upload; the site id is the first header field, so peeking it skips
    re-decoding the representative records.  ``None`` when the payload
    is too short to carry one.
    """
    if len(payload) < 4:
        return None
    return int(struct.unpack_from("<i", payload, 0)[0])


def encode_global_model(model: GlobalModel) -> bytes:
    """Serialize a full :class:`GlobalModel` broadcast.

    Unlike the accounting-only ``GlobalModel.to_bytes`` this keeps every
    representative's originating site and local cluster id, so the
    receiving site reconstructs the model the server built bit for bit —
    the precondition for the socket path's relabel step matching the
    in-process run exactly.
    """
    dim = model.representatives[0].point.size if model.representatives else 0
    record = struct.Struct(f"<iiqd{dim}d")
    chunks = [
        _GLOBAL_HEADER.pack(
            model.eps_global,
            model.min_pts_global,
            len(model.representatives),
            dim,
        )
    ]
    for rep, label in zip(model.representatives, model.global_labels):
        chunks.append(
            record.pack(
                rep.site_id,
                rep.local_cluster_id,
                int(label),
                rep.eps_range,
                *rep.point,
            )
        )
    return b"".join(chunks)


@_codec_guard("invalid GlobalModel payload")
def decode_global_model(payload: bytes) -> GlobalModel:
    """Inverse of :func:`encode_global_model`."""
    eps_global, min_pts_global, n_reps, dim = _GLOBAL_HEADER.unpack_from(payload, 0)
    record = struct.Struct(f"<iiqd{dim}d")
    expected = _GLOBAL_HEADER.size + n_reps * record.size
    if len(payload) != expected:
        raise CodecError(
            f"payload is {len(payload)} bytes, header declares {expected}"
        )
    offset = _GLOBAL_HEADER.size
    reps = []
    labels = np.empty(n_reps, dtype=np.intp)
    for i in range(n_reps):
        values = record.unpack_from(payload, offset)
        offset += record.size
        reps.append(
            Representative(
                point=np.asarray(values[4:], dtype=float),
                eps_range=values[3],
                site_id=values[0],
                local_cluster_id=values[1],
            )
        )
        labels[i] = values[2]
    return GlobalModel(
        representatives=reps,
        global_labels=labels,
        eps_global=eps_global,
        min_pts_global=int(min_pts_global),
    )


def encode_points(points: np.ndarray) -> bytes:
    """Serialize an ``(n, d)`` float64 point array (label queries)."""
    points = np.ascontiguousarray(points, dtype="<f8")
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    return _ARRAY_HEADER.pack(points.shape[0], points.shape[1]) + points.tobytes()


@_codec_guard("invalid point-array payload")
def decode_points(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_points`."""
    rows, dim = _ARRAY_HEADER.unpack_from(payload, 0)
    expected = _ARRAY_HEADER.size + rows * dim * 8
    if len(payload) != expected:
        raise CodecError(
            f"payload is {len(payload)} bytes, header declares {expected}"
        )
    data = np.frombuffer(payload, dtype="<f8", offset=_ARRAY_HEADER.size)
    return data.reshape(rows, dim).astype(float)


def encode_labels(labels: np.ndarray) -> bytes:
    """Serialize a label vector (int64 on the wire)."""
    labels = np.ascontiguousarray(labels, dtype="<i8")
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    return _COUNT.pack(labels.shape[0]) + labels.tobytes()


@_codec_guard("invalid label-vector payload")
def decode_labels(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_labels` (returns ``intp`` labels)."""
    (count,) = _COUNT.unpack_from(payload, 0)
    expected = _COUNT.size + count * 8
    if len(payload) != expected:
        raise CodecError(
            f"payload is {len(payload)} bytes, header declares {expected}"
        )
    data = np.frombuffer(payload, dtype="<i8", offset=_COUNT.size)
    return data.astype(np.intp)


def encode_await_global(timeout_s: float) -> bytes:
    """Serialize an AWAIT_GLOBAL request (how long the server may block)."""
    return _TIMEOUT.pack(float(timeout_s))


@_codec_guard("invalid AWAIT_GLOBAL payload")
def decode_await_global(payload: bytes) -> float:
    """Inverse of :func:`encode_await_global`."""
    if len(payload) != _TIMEOUT.size:
        raise CodecError(
            f"payload is {len(payload)} bytes, expected {_TIMEOUT.size}"
        )
    return float(_TIMEOUT.unpack(payload)[0])


def encode_json(document: dict) -> bytes:
    """Serialize a JSON document payload (health replies)."""
    return json.dumps(document, sort_keys=True).encode("utf-8")


@_codec_guard("invalid JSON payload")
def decode_json(payload: bytes) -> dict:
    """Inverse of :func:`encode_json`."""
    document = json.loads(payload.decode("utf-8"))
    if not isinstance(document, dict):
        raise CodecError(f"expected a JSON object, got {type(document).__name__}")
    return document


#: Fixed-size durability extension of a status payload: the server
#: epoch (generation counter across crash restarts; 0 = not stamped)
#: and the suggested retry-after seconds of an ``overloaded`` reply
#: (negative = not set).
_STATUS_EXT = struct.Struct("<Qd")


def encode_status(
    status: str,
    detail: str = "",
    *,
    epoch: int | None = None,
    retry_after_s: float | None = None,
) -> bytes:
    """Serialize an ACK/ERROR payload (status + human detail strings).

    When ``epoch`` or ``retry_after_s`` is given, a fixed 16-byte
    extension follows the strings; decoders accept payloads with or
    without it, so durability-aware servers interoperate with clients
    that only call :func:`decode_status`.
    """
    payload = _pack_str(status) + _pack_str(detail)
    if epoch is not None or retry_after_s is not None:
        payload += _STATUS_EXT.pack(
            0 if epoch is None else int(epoch),
            -1.0 if retry_after_s is None else float(retry_after_s),
        )
    return payload


def _decode_status_parts(
    payload: bytes,
) -> tuple[str, str, int | None, float | None]:
    status, offset = _unpack_str(payload, 0)
    detail, offset = _unpack_str(payload, offset)
    remaining = len(payload) - offset
    if remaining == 0:
        return status, detail, None, None
    if remaining != _STATUS_EXT.size:
        raise CodecError(f"{remaining} trailing bytes")
    epoch, retry_after_s = _STATUS_EXT.unpack_from(payload, offset)
    return (
        status,
        detail,
        int(epoch) if epoch else None,
        float(retry_after_s) if retry_after_s >= 0 else None,
    )


@_codec_guard("invalid status payload")
def decode_status(payload: bytes) -> tuple[str, str]:
    """Inverse of :func:`encode_status` (extension tolerated, dropped)."""
    status, detail, __, __ = _decode_status_parts(payload)
    return status, detail


@_codec_guard("invalid status payload")
def decode_status_ext(
    payload: bytes,
) -> tuple[str, str, int | None, float | None]:
    """Like :func:`decode_status` but surfaces the durability extension.

    Returns:
        ``(status, detail, epoch, retry_after_s)`` — ``epoch`` is
        ``None`` when the server did not stamp one (plain payload or
        epoch 0), ``retry_after_s`` is ``None`` unless the server
        suggested a backoff (``overloaded`` replies).
    """
    return _decode_status_parts(payload)


# ----------------------------------------------------------------------
# Streaming-session codecs (ROUND_OPEN / ROUND_COMMIT / MODEL_DELTA).
#
# A MODEL_DELTA exchange is asymmetric: the request names a round and how
# many representatives the client already holds; the reply carries only
# the representatives appended since then plus the *full* label vector.
# This is exact — never an approximation — because the server's
# incremental repair (GlobalModelRepairer) strictly appends
# representatives: the first ``base_count`` entries of the repaired model
# are the client's known prefix, byte for byte, and only labels move.
# ----------------------------------------------------------------------

_ROUND = struct.Struct("<i")                 # round index
_DELTA_REQUEST = struct.Struct("<iId")       # round, known reps, timeout
_DELTA_HEADER = struct.Struct("<dIIII")      # eps_global, min_pts,
#                                              base_count, n_new, dim


@dataclass(frozen=True)
class ModelDelta:
    """The appended tail of an incrementally repaired global model.

    Attributes:
        eps_global: the (frozen) merge radius of the session's model.
        min_pts_global: the server's ``MinPts_global``.
        base_count: representatives the receiver already holds — the
            unchanged prefix the delta builds on.
        new_representatives: representatives appended since
            ``base_count`` (order preserved).
        labels: global labels of the *entire* repaired model, length
            ``base_count + len(new_representatives)`` — labels of old
            representatives may change (merges), so the full vector
            always rides along.
    """

    eps_global: float
    min_pts_global: int
    base_count: int
    new_representatives: list[Representative]
    labels: np.ndarray


def encode_round_open(round_index: int) -> bytes:
    """Serialize a ROUND_OPEN payload (the round being opened)."""
    return _ROUND.pack(int(round_index))


@_codec_guard("invalid ROUND_OPEN payload")
def decode_round_open(payload: bytes) -> int:
    """Inverse of :func:`encode_round_open`."""
    if len(payload) != _ROUND.size:
        raise CodecError(f"payload is {len(payload)} bytes, expected {_ROUND.size}")
    return int(_ROUND.unpack(payload)[0])


def encode_round_commit(round_index: int) -> bytes:
    """Serialize a ROUND_COMMIT payload (the round being committed)."""
    return _ROUND.pack(int(round_index))


@_codec_guard("invalid ROUND_COMMIT payload")
def decode_round_commit(payload: bytes) -> int:
    """Inverse of :func:`encode_round_commit`."""
    if len(payload) != _ROUND.size:
        raise CodecError(f"payload is {len(payload)} bytes, expected {_ROUND.size}")
    return int(_ROUND.unpack(payload)[0])


def encode_delta_request(
    round_index: int, known_reps: int, timeout_s: float
) -> bytes:
    """Serialize a MODEL_DELTA request.

    Args:
        round_index: the round whose commit the client waits for.
        known_reps: representatives the client already holds (0 for a
            fresh session — the reply then carries the whole model).
        timeout_s: how long the server may hold the request open.
    """
    return _DELTA_REQUEST.pack(
        int(round_index), int(known_reps), float(timeout_s)
    )


@_codec_guard("invalid MODEL_DELTA request payload")
def decode_delta_request(payload: bytes) -> tuple[int, int, float]:
    """Inverse of :func:`encode_delta_request`."""
    if len(payload) != _DELTA_REQUEST.size:
        raise CodecError(
            f"payload is {len(payload)} bytes, expected {_DELTA_REQUEST.size}"
        )
    round_index, known_reps, timeout_s = _DELTA_REQUEST.unpack(payload)
    return int(round_index), int(known_reps), float(timeout_s)


def encode_model_delta(delta: ModelDelta) -> bytes:
    """Serialize a MODEL_DELTA reply."""
    reps = delta.new_representatives
    dim = reps[0].point.size if reps else 0
    record = struct.Struct(f"<iid{dim}d")
    labels = np.ascontiguousarray(delta.labels, dtype="<i8")
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size != delta.base_count + len(reps):
        raise ValueError(
            f"label vector has {labels.size} entries, model has "
            f"{delta.base_count + len(reps)} representatives"
        )
    chunks = [
        _DELTA_HEADER.pack(
            delta.eps_global,
            delta.min_pts_global,
            delta.base_count,
            len(reps),
            dim,
        )
    ]
    for rep in reps:
        chunks.append(
            record.pack(rep.site_id, rep.local_cluster_id, rep.eps_range, *rep.point)
        )
    chunks.append(labels.tobytes())
    return b"".join(chunks)


@_codec_guard("invalid MODEL_DELTA payload")
def decode_model_delta(payload: bytes) -> ModelDelta:
    """Inverse of :func:`encode_model_delta`."""
    eps_global, min_pts, base_count, n_new, dim = _DELTA_HEADER.unpack_from(
        payload, 0
    )
    record = struct.Struct(f"<iid{dim}d")
    labels_offset = _DELTA_HEADER.size + n_new * record.size
    expected = labels_offset + (base_count + n_new) * 8
    if len(payload) != expected:
        raise CodecError(
            f"payload is {len(payload)} bytes, header declares {expected}"
        )
    offset = _DELTA_HEADER.size
    reps = []
    for __ in range(n_new):
        values = record.unpack_from(payload, offset)
        offset += record.size
        reps.append(
            Representative(
                point=np.asarray(values[3:], dtype=float),
                eps_range=values[2],
                site_id=values[0],
                local_cluster_id=values[1],
            )
        )
    labels = np.frombuffer(payload, dtype="<i8", offset=labels_offset).astype(
        np.intp
    )
    return ModelDelta(
        eps_global=float(eps_global),
        min_pts_global=int(min_pts),
        base_count=int(base_count),
        new_representatives=reps,
        labels=labels,
    )


def delta_from_model(model: GlobalModel, known_reps: int) -> ModelDelta:
    """The delta that advances a client holding ``known_reps``
    representatives to ``model``.

    Raises:
        ValueError: when ``known_reps`` exceeds the model (the client
            claims to know more than exists — a protocol violation).
    """
    n = len(model.representatives)
    if not 0 <= known_reps <= n:
        raise ValueError(
            f"known_reps {known_reps} out of range for a model of {n} "
            "representatives"
        )
    return ModelDelta(
        eps_global=float(model.eps_global),
        min_pts_global=int(model.min_pts_global),
        base_count=int(known_reps),
        new_representatives=list(model.representatives[known_reps:]),
        labels=np.asarray(model.global_labels, dtype=np.intp).copy(),
    )


def apply_model_delta(
    known_model: GlobalModel | None, delta: ModelDelta
) -> GlobalModel:
    """Reconstruct the full global model from a known prefix + delta.

    Args:
        known_model: the model the client held before the round
            (``None`` for a fresh session; the delta must then have
            ``base_count == 0``).
        delta: the server's reply.

    Raises:
        CodecError: when the delta does not extend ``known_model``
            (mismatched prefix length) — the client must refetch with
            ``known_reps=0``.
    """
    known = [] if known_model is None else list(known_model.representatives)
    if len(known) != delta.base_count:
        raise CodecError(
            f"delta builds on {delta.base_count} representatives, client "
            f"holds {len(known)}"
        )
    reps = known + list(delta.new_representatives)
    if len(reps) != delta.labels.size:
        raise CodecError(
            f"reconstructed model has {len(reps)} representatives but "
            f"{delta.labels.size} labels"
        )
    return GlobalModel(
        representatives=reps,
        global_labels=np.asarray(delta.labels, dtype=np.intp).copy(),
        eps_global=delta.eps_global,
        min_pts_global=delta.min_pts_global,
    )
