"""The transport seam between the simulated and socket deployments.

:class:`Transport` is the protocol both network backends implement:
:class:`~repro.distributed.network.SimulatedNetwork` (byte/sim-time
accounting, in-process) and :class:`SocketTransport` (a real framed TCP
connection to a live :class:`~repro.service.server.DBDCService`).  The
fault machinery from PRs 2 and 5 —
:class:`~repro.faults.transport.ResilientTransport` retries, backoff and
circuit breakers, plus ``CentralServer.admit``'s integrity gate — only
ever calls ``send(sender, receiver, kind, payload)``, so it runs
unchanged over either backend; the integration tests pin exactly that.

:class:`SocketTransport` is deliberately synchronous (one short-lived
request/response per ``send``): the client side of DBDC is a site
worker, and worker code stays portable between threads and processes
when it never owns an event loop.  The asyncio side lives entirely in
the service process.
"""

from __future__ import annotations

import socket
import time
from typing import Protocol, runtime_checkable

from repro.distributed.network import Message
from repro.obs import NULL_METRICS, NULL_TRACER
from repro.service import wire

__all__ = ["Transport", "SocketTransport", "ServiceError"]

#: Message-kind strings of the in-process protocol mapped onto wire
#: frames, with the response kind each request expects.
_KIND_TO_FRAME: dict[str, tuple[wire.FrameKind, tuple[wire.FrameKind, ...]]] = {
    "local_model": (
        wire.FrameKind.LOCAL_MODEL,
        (wire.FrameKind.ACK,),
    ),
    "label_query": (
        wire.FrameKind.LABEL_QUERY,
        (wire.FrameKind.LABEL_REPLY,),
    ),
    "health": (
        wire.FrameKind.HEALTH,
        (wire.FrameKind.HEALTH_REPLY,),
    ),
}


class ServiceError(RuntimeError):
    """The service answered a request with an ERROR frame.

    Attributes:
        status: the typed status string (``"quarantined"``,
            ``"overloaded"``, ``"bad_round"``, ...).
        detail: the human-readable detail string.
        epoch: the server epoch stamped on the reply (``None`` when the
            server runs without a journal).
        retry_after_s: the backoff the server suggested (``overloaded``
            replies); ``None`` otherwise.
    """

    def __init__(
        self,
        status: str,
        detail: str = "",
        *,
        epoch: int | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        super().__init__(f"{status}: {detail}" if detail else status)
        self.status = status
        self.detail = detail
        self.epoch = epoch
        self.retry_after_s = retry_after_s


@runtime_checkable
class Transport(Protocol):
    """What a DBDC network backend must provide.

    ``send`` moves one payload from ``sender`` to ``receiver`` and
    returns the :class:`~repro.distributed.network.Message` metadata —
    byte count, transfer seconds, and the CRC-32 stamp from
    :mod:`repro.faults.integrity`.  ``SimulatedNetwork.send`` satisfies
    this by accounting; :class:`SocketTransport` by real I/O.
    """

    def send(
        self, sender: int, receiver: int, kind: str, payload: bytes
    ) -> Message:
        """Move one message; return its metadata."""
        ...


class SocketTransport:
    """A blocking framed TCP connection implementing :class:`Transport`.

    One instance is one persistent connection; requests and responses
    alternate (the wire protocol is strictly request/response).  The
    ``sim_seconds`` field of returned messages carries the *measured*
    round-trip wall time — on the socket path the "simulated" clock is
    the real one.

    Args:
        host: service host.
        port: service port.
        site_id: the site id stamped on outgoing frames.
        timeout_s: per-operation socket timeout (connect, send, read).
        max_payload: reject response frames declaring more than this.
        tracer: when an enabled :class:`~repro.obs.Tracer` is given,
            every request carries a version-2 frame with a
            :class:`~repro.service.wire.TraceContext` naming the
            tracer's trace id and the innermost open span as parent.
            The default :data:`~repro.obs.NULL_TRACER` keeps the wire
            bytes exactly version 1.
        metrics: registry for ``service.frame_bytes_{sent,received}``
            per-frame-kind counters (payload bytes, matching the
            ``SimulatedNetwork.bytes_by_kind`` accounting).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        site_id: int = wire.SERVER_ID,
        timeout_s: float = 30.0,
        max_payload: int = wire.DEFAULT_MAX_PAYLOAD,
        tracer=None,
        metrics=None,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.host = host
        self.port = port
        self.site_id = site_id
        self.timeout_s = timeout_s
        self.max_payload = max_payload
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = NULL_METRICS if metrics is None else metrics
        self.bytes_sent = 0
        self.bytes_received = 0
        self.n_requests = 0
        self.last_response: wire.Frame | None = None
        #: Last server epoch observed on any status reply (ACK or
        #: ERROR); ``None`` until a durability-aware server answers.
        self.last_epoch: int | None = None
        self._sock: socket.socket | None = None

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> "SocketTransport":
        """Open the connection (idempotent)."""
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "SocketTransport":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        """Whether the socket is currently open."""
        return self._sock is not None

    # ------------------------------------------------------------------
    # framed request/response
    # ------------------------------------------------------------------
    def _read_exactly(self, n: int) -> bytes:
        assert self._sock is not None
        chunks: list[bytes] = []
        remaining = n
        while remaining > 0:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise wire.FrameTruncated(
                    f"connection closed with {remaining} bytes outstanding"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        data = b"".join(chunks)
        self.bytes_received += len(data)
        return data

    def read_frame(self) -> wire.Frame:
        """Read one complete frame (CRC verified; typed errors, no hangs
        beyond the socket timeout)."""
        header = self._read_exactly(wire.HEADER_SIZE)
        # Parse the header alone first so a corrupt length field raises
        # before any payload read is attempted.
        try:
            frame, __ = wire.decode_frame(header, max_payload=self.max_payload)
            return frame  # zero-payload frame: already complete
        except wire.FrameTruncated:
            pass
        declared = wire.declared_payload_len(header)
        if declared > self.max_payload:
            raise wire.FrameTooLarge(
                f"declared payload {declared} exceeds cap {self.max_payload}"
            )
        payload = self._read_exactly(declared)
        frame, __ = wire.decode_frame(header + payload, max_payload=self.max_payload)
        return frame

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes onto the connection (no framing, no response).

        The seam the socket-level fault injector uses to put truncated
        or corrupted frames on a *real* connection; production code has
        no reason to call it.
        """
        self.connect()
        assert self._sock is not None
        self._sock.sendall(data)
        self.bytes_sent += len(data)

    def current_context(self) -> wire.TraceContext | None:
        """The trace context outgoing frames should carry right now.

        ``None`` when tracing is disabled — :func:`wire.encode_frame`
        then emits plain version-1 bytes, keeping the untraced wire path
        bit-identical.  With tracing on, the innermost open span becomes
        the parent; outside any span the context still names the trace.
        """
        if not self.tracer.enabled:
            return None
        span = self.tracer.current_span()
        span_id = 0 if span is None else self.tracer.ensure_span_id(span)
        return wire.TraceContext(
            trace_id=self.tracer.trace_id,
            span_id=span_id,
            flags=wire.TRACE_FLAG_SAMPLED,
        )

    def request(
        self, kind: wire.FrameKind, payload: bytes = b""
    ) -> wire.Frame:
        """Send one frame, return the response frame.

        Any socket or framing failure tears the connection down before
        re-raising: the stream state after a half-delivered exchange is
        unknowable, so the next request reconnects from scratch — the
        seam the retry layer leans on to ride out server restarts.

        Raises:
            ServiceError: when the service answers with an ERROR frame.
            WireError: on malformed responses.
            OSError: on socket failures/timeouts (including
                ``ConnectionRefusedError`` during a restart window).
        """
        try:
            self.connect()
            assert self._sock is not None
            data = wire.encode_frame(
                kind,
                payload,
                site_id=self.site_id,
                context=self.current_context(),
            )
            self._sock.sendall(data)
            self.bytes_sent += len(data)
            self.n_requests += 1
            if self.metrics.enabled:
                # Payload bytes only — the same accounting
                # SimulatedNetwork keeps in bytes_by_kind, so the two
                # backends reconcile.
                self.metrics.inc(
                    f"service.frame_bytes_sent"
                    f"[{wire.FrameKind(kind).name.lower()}]",
                    len(payload),
                )
            response = self.read_frame()
        except (OSError, wire.WireError):
            self.close()
            raise
        if self.metrics.enabled:
            self.metrics.inc(
                f"service.frame_bytes_received[{response.kind.name.lower()}]",
                len(response.payload),
            )
        if response.kind == wire.FrameKind.ERROR:
            status, detail, epoch, retry_after_s = wire.decode_status_ext(
                response.payload
            )
            if epoch is not None:
                self.last_epoch = epoch
            raise ServiceError(
                status, detail, epoch=epoch, retry_after_s=retry_after_s
            )
        return response

    # ------------------------------------------------------------------
    # the Transport protocol
    # ------------------------------------------------------------------
    def send(
        self, sender: int, receiver: int, kind: str, payload: bytes
    ) -> Message:
        """Deliver one protocol message over the socket.

        The returned :class:`Message` mirrors what ``SimulatedNetwork``
        records: payload length, the shared CRC-32 stamp, and transfer
        seconds — here the measured request/response round trip.
        """
        mapping = _KIND_TO_FRAME.get(kind)
        if mapping is None:
            raise ValueError(
                f"kind {kind!r} has no wire mapping; known: "
                f"{sorted(_KIND_TO_FRAME)}"
            )
        frame_kind, expected_replies = mapping
        start = time.perf_counter()
        response = self.request(frame_kind, payload)
        elapsed = time.perf_counter() - start
        if response.kind not in expected_replies:
            raise wire.CodecError(
                f"unexpected reply {response.kind.name} to {kind!r}"
            )
        self.last_response = response
        return Message(
            sender=sender,
            receiver=receiver,
            kind=kind,
            n_bytes=len(payload),
            sim_seconds=elapsed,
            payload_crc=wire.payload_crc32(payload),
        )
