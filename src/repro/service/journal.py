"""Write-ahead journal backing :class:`~repro.service.server.DBDCService`.

The service's protocol state — admitted local models, round opens and
commits, quarantine decisions — is journaled to disk *before* any of it
is acknowledged to a client, so a crashed server can be restarted and
replayed into the exact state an uninterrupted run would hold (the
recovery tests pin bit-identity per round).

Record format (little-endian, length-prefixed, CRC-guarded)::

    +-------+-------+------+------+--------+----------------+
    | magic | crc32 | kind | seq  | length | payload        |
    | 4s    | I     | B    | Q    | I      | length bytes   |
    +-------+-------+------+------+--------+----------------+

The CRC covers ``kind + seq + length + payload`` — a flipped kind or
sequence byte is caught even though the payloads of, say, ROUND_OPEN
and ROUND_COMMIT are interchangeable.  Every record carries a strictly
increasing sequence number; replay deduplicates on it, which makes the
compaction rename window crash-safe (a crash between the snapshot
rename and the log truncation leaves duplicate records that replay
skips instead of applying twice).

Two files live in the journal directory:

- ``wal.log`` — the append-only tail, fsynced per record by default.
- ``wal.snapshot`` — the compacted prefix, rewritten atomically
  (tmp + fsync + rename) whenever the log outgrows
  ``snapshot_every_bytes`` at a safe point (no open round).

Compaction preserves the *record stream* rather than derived state:
recovery always replays records through the live admission/commit code
path, so recovered state is trivially equivalent to never having
crashed (only redundant EPOCH records are collapsed).  Every
truncation or corruption point yields a typed error —
:class:`JournalTruncated` for a torn tail, :class:`JournalCorrupt` for
bit damage — and recovery resumes from the last good record, never a
wrong one.
"""

from __future__ import annotations

import enum
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "RecordKind",
    "Record",
    "ScanResult",
    "JournalRecovery",
    "JournalError",
    "JournalTruncated",
    "JournalCorrupt",
    "WriteAheadJournal",
    "scan_records",
    "encode_record",
    "encode_epoch",
    "decode_epoch",
    "encode_round_marker",
    "decode_round_marker",
    "encode_admitted",
    "decode_admitted",
    "encode_quarantine",
    "decode_quarantine",
]

MAGIC = b"DBWJ"

#: magic, crc32, kind, sequence, payload length.
_RECORD_HEADER = struct.Struct("<4sIBQI")
RECORD_HEADER_SIZE = _RECORD_HEADER.size
#: The slice of the header the CRC covers (everything after the CRC).
_CRC_BODY = struct.Struct("<BQI")

#: Reject records declaring more payload than this — a corrupt length
#: field must not make the scanner swallow the rest of the file as one
#: giant "payload".
MAX_RECORD_PAYLOAD = 64 * 1024 * 1024

_EPOCH = struct.Struct("<Q")
_ROUND = struct.Struct("<i")
_QUARANTINE = struct.Struct("<iiH")  # round, site, reason length


class RecordKind(enum.IntEnum):
    """What one journal record describes."""

    EPOCH = 1           #: a server generation started (payload: epoch)
    MODEL_ADMITTED = 2  #: an upload passed the admission gate
    ROUND_OPEN = 3      #: a streaming round opened
    ROUND_COMMIT = 4    #: a streaming round committed
    QUARANTINE = 5      #: an upload was quarantined


class JournalError(Exception):
    """Base of every journal failure; ``offset`` names the byte the
    scanner stopped at."""

    def __init__(self, message: str, *, offset: int = 0) -> None:
        super().__init__(message)
        self.offset = offset


class JournalTruncated(JournalError):
    """The journal ends mid-record — the torn tail of a crash mid-write.
    Everything before ``offset`` is intact and replayable."""


class JournalCorrupt(JournalError):
    """A record is damaged in place (bad magic, CRC mismatch, impossible
    length or sequence) — bit rot or an overwrite, not a torn append."""


@dataclass(frozen=True)
class Record:
    """One decoded journal record."""

    kind: RecordKind
    seq: int
    payload: bytes


@dataclass(frozen=True)
class ScanResult:
    """What scanning one journal file produced.

    Attributes:
        records: every intact record, in file order.
        valid_bytes: length of the intact prefix — the repair point.
        error: the typed error that stopped the scan (``None`` on a
            clean end-of-file).
    """

    records: list
    valid_bytes: int
    error: JournalError | None


@dataclass(frozen=True)
class JournalRecovery:
    """What :meth:`WriteAheadJournal.recover` reconstructed.

    Attributes:
        records: the deduplicated record stream to replay, in order.
        snapshot_error: typed error the snapshot scan stopped at.
        log_error: typed error the log scan stopped at.
        truncated_bytes: torn/damaged log bytes discarded by the repair.
        gap: true when the snapshot lost records *and* the log does not
            continue contiguously — the log tail was unreachable and
            was discarded rather than replayed out of order.
    """

    records: list
    snapshot_error: JournalError | None = None
    log_error: JournalError | None = None
    truncated_bytes: int = 0
    gap: bool = False


def encode_record(kind: RecordKind, seq: int, payload: bytes) -> bytes:
    """Serialize one record (header + payload)."""
    if len(payload) > MAX_RECORD_PAYLOAD:
        raise ValueError(
            f"record payload of {len(payload)} bytes exceeds "
            f"{MAX_RECORD_PAYLOAD}"
        )
    body = _CRC_BODY.pack(int(kind), seq, len(payload))
    crc = zlib.crc32(body + payload) & 0xFFFFFFFF
    return _RECORD_HEADER.pack(MAGIC, crc, int(kind), seq, len(payload)) + payload


def scan_records(data: bytes) -> ScanResult:
    """Walk a journal byte stream, stopping at the first damage.

    Never raises: the typed error lands in the result so callers can
    both replay the good prefix and report exactly what was lost.
    """
    records: list[Record] = []
    offset = 0
    prev_seq = 0
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < RECORD_HEADER_SIZE:
            return ScanResult(
                records,
                offset,
                JournalTruncated(
                    f"{remaining} trailing bytes, record header needs "
                    f"{RECORD_HEADER_SIZE}",
                    offset=offset,
                ),
            )
        magic, crc, kind_value, seq, length = _RECORD_HEADER.unpack_from(
            data, offset
        )
        if magic != MAGIC:
            return ScanResult(
                records,
                offset,
                JournalCorrupt(
                    f"bad record magic {magic!r} at byte {offset}",
                    offset=offset,
                ),
            )
        if length > MAX_RECORD_PAYLOAD:
            return ScanResult(
                records,
                offset,
                JournalCorrupt(
                    f"record declares {length} payload bytes at byte "
                    f"{offset} (cap {MAX_RECORD_PAYLOAD})",
                    offset=offset,
                ),
            )
        end = offset + RECORD_HEADER_SIZE + length
        if end > len(data):
            return ScanResult(
                records,
                offset,
                JournalTruncated(
                    f"record at byte {offset} declares {length} payload "
                    f"bytes, {len(data) - offset - RECORD_HEADER_SIZE} "
                    "present",
                    offset=offset,
                ),
            )
        payload = data[offset + RECORD_HEADER_SIZE : end]
        body = data[offset + 8 : offset + RECORD_HEADER_SIZE]
        if zlib.crc32(body + payload) & 0xFFFFFFFF != crc:
            return ScanResult(
                records,
                offset,
                JournalCorrupt(
                    f"CRC mismatch on record at byte {offset}", offset=offset
                ),
            )
        try:
            kind = RecordKind(kind_value)
        except ValueError:
            return ScanResult(
                records,
                offset,
                JournalCorrupt(
                    f"unknown record kind {kind_value} at byte {offset}",
                    offset=offset,
                ),
            )
        if seq <= prev_seq:
            return ScanResult(
                records,
                offset,
                JournalCorrupt(
                    f"sequence went {prev_seq} -> {seq} at byte {offset}",
                    offset=offset,
                ),
            )
        records.append(Record(kind=kind, seq=seq, payload=payload))
        prev_seq = seq
        offset = end
    return ScanResult(records, offset, None)


# ----------------------------------------------------------------------
# record payload codecs
# ----------------------------------------------------------------------
def encode_epoch(epoch: int) -> bytes:
    """EPOCH payload: the server generation that just started."""
    return _EPOCH.pack(int(epoch))


def decode_epoch(payload: bytes) -> int:
    """Inverse of :func:`encode_epoch`."""
    if len(payload) != _EPOCH.size:
        raise JournalCorrupt(
            f"EPOCH payload is {len(payload)} bytes, expected {_EPOCH.size}"
        )
    return int(_EPOCH.unpack(payload)[0])


def encode_round_marker(round_index: int) -> bytes:
    """ROUND_OPEN / ROUND_COMMIT payload: the round index."""
    return _ROUND.pack(int(round_index))


def decode_round_marker(payload: bytes) -> int:
    """Inverse of :func:`encode_round_marker`."""
    if len(payload) != _ROUND.size:
        raise JournalCorrupt(
            f"round payload is {len(payload)} bytes, expected {_ROUND.size}"
        )
    return int(_ROUND.unpack(payload)[0])


def encode_admitted(round_index: int, model_payload: bytes) -> bytes:
    """MODEL_ADMITTED payload: round index (-1 = one-shot) + the exact
    wire payload of the admitted upload (replay re-decodes it through
    the same codec the live admission used)."""
    return _ROUND.pack(int(round_index)) + model_payload


def decode_admitted(payload: bytes) -> tuple[int, bytes]:
    """Inverse of :func:`encode_admitted`."""
    if len(payload) < _ROUND.size:
        raise JournalCorrupt(
            f"MODEL_ADMITTED payload is {len(payload)} bytes, header needs "
            f"{_ROUND.size}"
        )
    return int(_ROUND.unpack_from(payload, 0)[0]), payload[_ROUND.size :]


def encode_quarantine(round_index: int, site_id: int, reason: str) -> bytes:
    """QUARANTINE payload: round index, site id, human reason."""
    data = reason.encode("utf-8")[:0xFFFF]
    return _QUARANTINE.pack(int(round_index), int(site_id), len(data)) + data


def decode_quarantine(payload: bytes) -> tuple[int, int, str]:
    """Inverse of :func:`encode_quarantine`."""
    if len(payload) < _QUARANTINE.size:
        raise JournalCorrupt(
            f"QUARANTINE payload is {len(payload)} bytes, header needs "
            f"{_QUARANTINE.size}"
        )
    round_index, site_id, length = _QUARANTINE.unpack_from(payload, 0)
    data = payload[_QUARANTINE.size :]
    if len(data) != length:
        raise JournalCorrupt(
            f"QUARANTINE reason is {len(data)} bytes, header declares "
            f"{length}"
        )
    return int(round_index), int(site_id), data.decode("utf-8", "replace")


class WriteAheadJournal:
    """The service's durable record stream (``wal.log`` + ``wal.snapshot``).

    Args:
        directory: where the journal files live (created if missing).
        fsync: fsync the log after every appended record (the
            durability-before-acknowledgement guarantee; turn off only
            for benches that measure the fsync cost itself).
        snapshot_every_bytes: compact once the log outgrows this.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        fsync: bool = True,
        snapshot_every_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        if snapshot_every_bytes <= 0:
            raise ValueError(
                "snapshot_every_bytes must be positive, got "
                f"{snapshot_every_bytes}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log_path = self.directory / "wal.log"
        self.snapshot_path = self.directory / "wal.snapshot"
        self._tmp_path = self.directory / "wal.snapshot.tmp"
        self.fsync = bool(fsync)
        self.snapshot_every_bytes = int(snapshot_every_bytes)
        self.bytes_written = 0
        self.records_written = 0
        self.fsync_count = 0
        self.compactions = 0
        self.last_recovery: JournalRecovery | None = None
        self._fh = None
        self._next_seq = 1

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> JournalRecovery:
        """Scan snapshot + log, repair the torn tail, return the replay.

        The log is truncated to its intact prefix (the snapshot is
        written atomically, so it is never repaired in place).  A stale
        compaction temp file is removed.  Records already covered by the
        snapshot are deduplicated by sequence number — the crash window
        between the snapshot rename and the log truncation therefore
        replays each record exactly once.
        """
        self._tmp_path.unlink(missing_ok=True)
        snap_bytes = (
            self.snapshot_path.read_bytes()
            if self.snapshot_path.exists()
            else b""
        )
        log_bytes = (
            self.log_path.read_bytes() if self.log_path.exists() else b""
        )
        snap = scan_records(snap_bytes)
        log = scan_records(log_bytes)
        last_snap_seq = snap.records[-1].seq if snap.records else 0
        fresh = [r for r in log.records if r.seq > last_snap_seq]
        gap = False
        if snap.error is not None and fresh:
            # The snapshot lost records off its tail; the log only
            # continues the stream if its first fresh record is the very
            # next sequence number — otherwise replaying it would skip
            # state and silently diverge.
            if fresh[0].seq != last_snap_seq + 1:
                gap = True
                fresh = []
        records = list(snap.records) + fresh
        highest = max(
            last_snap_seq,
            log.records[-1].seq if log.records else 0,
        )
        self._next_seq = highest + 1
        truncated = len(log_bytes) - log.valid_bytes
        if gap:
            # The surviving log records are unreachable without their
            # predecessors: drop them so later appends extend a
            # consistent stream.
            with open(self.log_path, "wb") as fh:
                fh.flush()
                os.fsync(fh.fileno())
            truncated = len(log_bytes)
        elif truncated:
            with open(self.log_path, "wb") as fh:
                fh.write(log_bytes[: log.valid_bytes])
                fh.flush()
                os.fsync(fh.fileno())
        recovery = JournalRecovery(
            records=records,
            snapshot_error=snap.error,
            log_error=log.error,
            truncated_bytes=truncated,
            gap=gap,
        )
        self.last_recovery = recovery
        return recovery

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def _handle(self):
        if self._fh is None:
            self._fh = open(self.log_path, "ab")
        return self._fh

    def append(self, kind: RecordKind, payload: bytes) -> int:
        """Durably append one record; returns its sequence number.

        The record is flushed (and fsynced unless disabled) before this
        returns — the caller may acknowledge the client afterwards.
        """
        seq = self._next_seq
        record = encode_record(kind, seq, payload)
        fh = self._handle()
        fh.write(record)
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
            self.fsync_count += 1
        self._next_seq += 1
        self.bytes_written += len(record)
        self.records_written += 1
        return seq

    @property
    def log_size(self) -> int:
        """Current size of the append log in bytes."""
        try:
            return self.log_path.stat().st_size
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def maybe_compact(self, *, force: bool = False) -> bool:
        """Fold the log into the snapshot when it has outgrown the cap.

        Only call at a safe point (no round open): the snapshot is
        written to a temp file, fsynced, atomically renamed over the old
        one, and only then is the log truncated.  A crash anywhere in
        between is recovered by the sequence-number dedup in
        :meth:`recover`.  Redundant EPOCH records collapse to the
        newest; everything else is preserved verbatim — replay always
        runs the full record stream through the live code path.
        """
        size = self.log_size
        if size == 0:
            return False
        if not force and size < self.snapshot_every_bytes:
            return False
        if self._fh is not None:
            self._fh.flush()
        snap_bytes = (
            self.snapshot_path.read_bytes()
            if self.snapshot_path.exists()
            else b""
        )
        log_bytes = self.log_path.read_bytes()
        snap = scan_records(snap_bytes)
        log = scan_records(log_bytes)
        if snap.error is not None or log.error is not None:
            raise (snap.error or log.error)
        last_snap_seq = snap.records[-1].seq if snap.records else 0
        merged = list(snap.records) + [
            r for r in log.records if r.seq > last_snap_seq
        ]
        epochs = [r for r in merged if r.kind == RecordKind.EPOCH]
        if len(epochs) > 1:
            keep = epochs[-1]  # epoch grows with seq: last is the max
            merged = [
                r for r in merged if r.kind != RecordKind.EPOCH or r is keep
            ]
        with open(self._tmp_path, "wb") as fh:
            for record in merged:
                fh.write(encode_record(record.kind, record.seq, record.payload))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(self._tmp_path, self.snapshot_path)
        self._sync_directory()
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        with open(self.log_path, "wb") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        self.compactions += 1
        return True

    def _sync_directory(self) -> None:
        """Make the snapshot rename durable (fsync the directory)."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds: best effort
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
