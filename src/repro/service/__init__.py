"""Service mode: DBDC as a live socket deployment.

The subsystem promotes the simulated distributed protocol to a real
one — same central server, same admission gate, same fault machinery —
behind a versioned binary wire protocol:

* :mod:`repro.service.wire` — frame format and payload codecs.
* :mod:`repro.service.transport` — the :class:`Transport` seam both
  :class:`~repro.distributed.network.SimulatedNetwork` and
  :class:`SocketTransport` implement.
* :mod:`repro.service.server` — the asyncio :class:`DBDCService`.
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`.
* :mod:`repro.service.worker` — the site-worker process body.
* :mod:`repro.service.bench` — the sustained-load bench behind
  ``python -m repro serve-bench``.

See ``docs/service.md`` for the wire format tables and deployment
topology.
"""

from repro.service.client import ServiceClient
from repro.service.server import DBDCService, ServiceConfig, ServiceHandle
from repro.service.transport import ServiceError, SocketTransport, Transport
from repro.service.worker import SiteWorkerResult, run_site_worker

__all__ = [
    "DBDCService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "SiteWorkerResult",
    "SocketTransport",
    "Transport",
    "run_site_worker",
]
