"""Service mode: DBDC as a live socket deployment.

The subsystem promotes the simulated distributed protocol to a real
one — same central server, same admission gate, same fault machinery —
behind a versioned binary wire protocol:

* :mod:`repro.service.wire` — frame format and payload codecs.
* :mod:`repro.service.transport` — the :class:`Transport` seam both
  :class:`~repro.distributed.network.SimulatedNetwork` and
  :class:`SocketTransport` implement.
* :mod:`repro.service.server` — the asyncio :class:`DBDCService`.
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`.
* :mod:`repro.service.worker` — the site-worker process body (one-shot
  and streaming-session loops).
* :mod:`repro.service.faulting` — socket-level fault injection
  (:class:`FaultingSocketTransport` replays the FaultPlan DSL against
  real connections).
* :mod:`repro.service.bench` — the sustained-load bench behind
  ``python -m repro serve-bench`` (plus the multi-process client sweep).

See ``docs/service.md`` for the wire format tables, the
streaming-session state machine and deployment topology.
"""

from repro.service.client import ServiceClient
from repro.service.faulting import FaultingSocketTransport, InjectedFault
from repro.service.server import DBDCService, ServiceConfig, ServiceHandle
from repro.service.transport import ServiceError, SocketTransport, Transport
from repro.service.worker import (
    SiteSessionResult,
    SiteWorkerResult,
    run_site_worker,
    run_site_worker_session,
)

__all__ = [
    "DBDCService",
    "FaultingSocketTransport",
    "InjectedFault",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "SiteSessionResult",
    "SiteWorkerResult",
    "SocketTransport",
    "Transport",
    "run_site_worker",
    "run_site_worker_session",
]
