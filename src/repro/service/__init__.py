"""Service mode: DBDC as a live socket deployment.

The subsystem promotes the simulated distributed protocol to a real
one — same central server, same admission gate, same fault machinery —
behind a versioned binary wire protocol:

* :mod:`repro.service.wire` — frame format and payload codecs.
* :mod:`repro.service.transport` — the :class:`Transport` seam both
  :class:`~repro.distributed.network.SimulatedNetwork` and
  :class:`SocketTransport` implement.
* :mod:`repro.service.server` — the asyncio :class:`DBDCService`.
* :mod:`repro.service.journal` — the CRC-guarded write-ahead journal
  behind crash-restart recovery (:class:`WriteAheadJournal`).
* :mod:`repro.service.client` — the blocking :class:`ServiceClient`.
* :mod:`repro.service.worker` — the site-worker process body (one-shot
  and streaming-session loops).
* :mod:`repro.service.faulting` — socket-level fault injection
  (:class:`FaultingSocketTransport` replays the FaultPlan DSL against
  real connections).
* :mod:`repro.service.bench` — the sustained-load bench behind
  ``python -m repro serve-bench`` (plus the multi-process client sweep).
* :mod:`repro.service.recovery_smoke` — the subprocess ``kill -9`` /
  restart / resume drill behind ``python -m repro serve-recovery-smoke``
  (plus the typed-overload query storm).
* :mod:`repro.service.tracing` — distributed tracing of socket
  sessions: the traced session runner, trace/result reconciliation and
  the per-round critical-path analysis behind
  ``python -m repro serve-trace``.

See ``docs/service.md`` for the wire format tables, the
streaming-session state machine and deployment topology.
"""

from repro.service.client import (
    ClockSync,
    ServiceClient,
    sync_clock,
    upload_trace,
)
from repro.service.faulting import FaultingSocketTransport, InjectedFault
from repro.service.journal import (
    JournalCorrupt,
    JournalError,
    JournalTruncated,
    RecordKind,
    WriteAheadJournal,
)
from repro.service.server import DBDCService, ServiceConfig, ServiceHandle
from repro.service.tracing import (
    SessionTraceReport,
    critical_path,
    format_critical_path,
    reconcile_session_trace,
    run_traced_socket_session,
)
from repro.service.transport import ServiceError, SocketTransport, Transport
from repro.service.worker import (
    SiteSessionResult,
    SiteWorkerResult,
    run_site_worker,
    run_site_worker_session,
)

__all__ = [
    "ClockSync",
    "DBDCService",
    "FaultingSocketTransport",
    "InjectedFault",
    "JournalCorrupt",
    "JournalError",
    "JournalTruncated",
    "RecordKind",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "SessionTraceReport",
    "SiteSessionResult",
    "SiteWorkerResult",
    "SocketTransport",
    "Transport",
    "WriteAheadJournal",
    "critical_path",
    "format_critical_path",
    "reconcile_session_trace",
    "run_site_worker",
    "run_site_worker_session",
    "run_traced_socket_session",
    "sync_clock",
    "upload_trace",
]
