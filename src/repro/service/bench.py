"""Sustained-load bench against a live :class:`DBDCService`.

``python -m repro serve-bench`` boots the service in-process (its own
event-loop thread), runs the full site protocol over real sockets, then
hammers the label-query path with concurrent clients — and scores the
run on three axes the regress rules gate:

* **correctness** — ``serve.labels_identical``: the socket run's labels
  must be bit-identical to the same seed/config run through
  ``SimulatedNetwork`` (zero tolerance, survives ``--ignore-timing``);
  ``serve.scrape_roundtrip_ok``: the live OpenMetrics endpoint must
  strict-parse.
* **reliability** — ``serve.upload_failed`` / ``serve.query_failed``
  stay at zero.
* **throughput/latency** — ``serve.query_throughput_rps`` and the
  ``serve.*_wall_seconds`` percentiles (timing-tagged: dropped on
  cross-machine CI comparisons, gated on like-for-like reruns).

The report lands in the ``.runs/`` registry via :func:`record_serve_bench`
(artifact ``BENCH_serve.json``), mirroring the hot-path and chaos
benches.
"""

from __future__ import annotations

import argparse
import tempfile
import threading
import time
import urllib.request

import numpy as np

from repro.data.datasets import load_dataset
from repro.distributed.partition import partition, split
from repro.distributed.runner import DistributedRunConfig, DistributedRunner
from repro.obs import MetricsRegistry, Tracer, validate_trace
from repro.obs.openmetrics import parse_openmetrics
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceHandle
from repro.service.worker import run_site_worker

__all__ = [
    "run_serve_bench",
    "run_client_sweep",
    "format_serve_summary",
    "format_sweep_summary",
    "record_serve_bench",
    "record_client_sweep",
    "main",
]


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


def run_serve_bench(
    *,
    dataset: str = "A",
    cardinality: int | None = None,
    n_sites: int = 4,
    n_clients: int = 8,
    n_queries: int = 200,
    query_batch: int = 256,
    scheme: str = "rep_scor",
    seed: int = 42,
    trace: bool = False,
    journal_dir: str | None = None,
) -> dict:
    """Run the sustained-load service bench.

    Phases: (1) reference run through the simulated path; (2) boot the
    service with a write-ahead journal; (3) concurrent site uploads over
    sockets + bit-identity check; (4) ``n_clients`` threads issuing
    ``n_queries`` label queries total; (5) live HTTP metrics scrape,
    strict-parsed; (6) the recovery drill — hard-kill the service
    thread, restart it against the same journal directory, and check
    that the recovered model labels the data set identically.

    Args:
        dataset: data set name (A/B/C).
        cardinality: data set size override.
        n_sites: client sites uploading models.
        n_clients: concurrent query clients.
        n_queries: total label queries across all clients.
        query_batch: points per label query.
        scheme: local model scheme.
        seed: partitioning seed.
        trace: also trace the bench — service and site workers share one
            trace id, workers ship their spans over ``TRACE_UPLOAD``,
            and the merged document is schema-gated
            (``serve.trace_*`` metrics) and stored in the report.
        journal_dir: write-ahead journal directory (a temporary one per
            bench run when omitted — the journal and recovery drill are
            always exercised).

    Returns:
        A JSON-able report with a flat ``metrics`` dict — including
        ``serve.journal_bytes``, ``serve.journal_fsync_count``,
        ``serve.recovery_wall_seconds`` and
        ``serve.recovery_labels_identical`` from the drill.
    """
    with tempfile.TemporaryDirectory(prefix="dbdc-wal-") as scratch_dir:
        return _run_serve_bench_journaled(
            dataset=dataset,
            cardinality=cardinality,
            n_sites=n_sites,
            n_clients=n_clients,
            n_queries=n_queries,
            query_batch=query_batch,
            scheme=scheme,
            seed=seed,
            trace=trace,
            journal_dir=journal_dir if journal_dir is not None else scratch_dir,
        )


def _run_serve_bench_journaled(
    *,
    dataset: str,
    cardinality: int | None,
    n_sites: int,
    n_clients: int,
    n_queries: int,
    query_batch: int,
    scheme: str,
    seed: int,
    trace: bool,
    journal_dir: str,
) -> dict:
    """The bench body with a concrete journal directory."""
    data = load_dataset(dataset, cardinality=cardinality)
    points = data.points
    run_config = DistributedRunConfig(
        eps_local=data.eps_local,
        min_pts_local=data.min_pts,
        scheme=scheme,
        seed=seed,
    )

    # Phase 1: the same workload through the simulated in-process path —
    # the oracle the socket run must match bit for bit.
    reference = DistributedRunner(run_config).run(points, n_sites)
    ref_labels = reference.labels_in_original_order()

    assignment = partition(points, n_sites, run_config.partition_strategy, seed)
    parts = split(points, assignment)

    report: dict = {
        "meta": {
            "dataset": data.name,
            "cardinality": int(points.shape[0]),
            "n_sites": n_sites,
            "n_clients": n_clients,
            "n_queries": n_queries,
            "query_batch": query_batch,
            "scheme": scheme,
            "seed": seed,
        }
    }
    bench_start = time.perf_counter()

    server_tracer = Tracer() if trace else None
    worker_tracers = (
        {
            site_id: Tracer(trace_id=server_tracer.trace_id)
            for site_id in range(n_sites)
        }
        if server_tracer is not None
        else {}
    )
    server_metrics = MetricsRegistry()
    service_config = ServiceConfig(
        expected_sites=n_sites,
        relabel_kernel=run_config.relabel_kernel,
        journal_dir=journal_dir,
    )
    handle = ServiceHandle.start(
        service_config,
        metrics=server_metrics,
        tracer=server_tracer,
    )
    with handle:
        # Phase 3: concurrent uploads + relabel over real sockets.
        upload_start = time.perf_counter()
        worker_results: dict[int, object] = {}

        def upload(site_id: int) -> None:
            worker_results[site_id] = run_site_worker(
                handle.host,
                handle.port,
                site_id,
                parts[site_id],
                eps_local=data.eps_local,
                min_pts_local=data.min_pts,
                scheme=scheme,
                tracer=worker_tracers.get(site_id),
            )

        threads = [
            threading.Thread(target=upload, args=(site_id,))
            for site_id in range(n_sites)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        upload_seconds = time.perf_counter() - upload_start

        socket_labels = np.empty(points.shape[0], dtype=np.intp)
        upload_failed = 0
        upload_attempts = 0
        bytes_up = 0
        for site_id, result in worker_results.items():
            if result.verdict != "admitted" or result.labels.size == 0:
                upload_failed += 1
                continue
            socket_labels[assignment == site_id] = result.labels
            upload_attempts += result.upload_attempts
            bytes_up += result.bytes_sent
        labels_identical = upload_failed == 0 and bool(
            np.array_equal(ref_labels, socket_labels)
        )

        # Phase 4: sustained concurrent label-query load.  Every client
        # owns one connection and walks fixed slices of the data set, so
        # the total work is deterministic; only the timings vary.
        latencies: list[float] = []
        latency_lock = threading.Lock()
        query_failures = [0] * n_clients
        per_client = [
            list(range(client, n_queries, n_clients))
            for client in range(n_clients)
        ]
        n_points = points.shape[0]

        def query_client(client: int) -> None:
            mine: list[float] = []
            try:
                with ServiceClient(handle.host, handle.port) as service:
                    for index in per_client[client]:
                        lo = (index * query_batch) % max(n_points - query_batch, 1)
                        batch = points[lo : lo + query_batch]
                        start = time.perf_counter()
                        labels = service.query(batch)
                        mine.append(time.perf_counter() - start)
                        if labels.size != batch.shape[0]:
                            query_failures[client] += 1
            except Exception:
                query_failures[client] += len(per_client[client]) - len(mine)
            with latency_lock:
                latencies.extend(mine)

        query_start = time.perf_counter()
        clients = [
            threading.Thread(target=query_client, args=(client,))
            for client in range(n_clients)
        ]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        query_seconds = time.perf_counter() - query_start

        # Phase 5: live scrape of the HTTP OpenMetrics endpoint, parsed
        # with the strict parser — a malformed exposition *or* a missing
        # OpenMetrics content-type is a failure.
        scrape_ok = 0.0
        scrape_families = 0
        try:
            with urllib.request.urlopen(
                f"http://{handle.host}:{handle.metrics_port}/metrics", timeout=10
            ) as response:
                exposition = response.read().decode("utf-8")
                content_type = response.headers.get("Content-Type")
            families = parse_openmetrics(exposition, content_type=content_type)
            scrape_families = len(families)
            scrape_ok = 1.0 if scrape_families > 0 else 0.0
        except Exception as error:
            report["scrape_error"] = str(error)

        health = {}
        try:
            with ServiceClient(handle.host, handle.port) as service:
                health = service.health()
        except Exception as error:
            report["health_error"] = str(error)

        # Phase 5b (--trace): merge the distributed trace while the loop
        # is still running and gate it — schema-valid, every process
        # shipped its spans, one admission span per site.
        trace_doc = None
        if trace:
            trace_doc = handle.merged_trace()

        # Phase 6: recovery drill.  Snapshot what the live server says
        # about the data set, then stop its loop dead — no drain, no
        # journal close — and bring a fresh service up on the same
        # journal directory.  The recovered model must answer the same
        # query bit-identically.
        precrash_labels = None
        try:
            with ServiceClient(handle.host, handle.port) as service:
                precrash_labels = service.query(points)
        except Exception as error:
            report["precrash_query_error"] = str(error)
        handle.kill()

    journal_bytes = server_metrics.value("service.journal_bytes")
    journal_fsyncs = server_metrics.value("service.journal_fsyncs")
    recovery_metrics = MetricsRegistry()
    recovery_labels_identical = 0.0
    drill_start = time.perf_counter()
    with ServiceHandle.start(
        ServiceConfig(
            expected_sites=n_sites,
            relabel_kernel=run_config.relabel_kernel,
            journal_dir=journal_dir,
            metrics_port=None,
        ),
        metrics=recovery_metrics,
    ) as recovered_handle:
        try:
            with ServiceClient(
                recovered_handle.host, recovered_handle.port
            ) as service:
                recovered_labels = service.query(points)
            recovery_labels_identical = (
                1.0
                if precrash_labels is not None
                and np.array_equal(precrash_labels, recovered_labels)
                else 0.0
            )
        except Exception as error:
            report["recovery_error"] = str(error)
    drill_seconds = time.perf_counter() - drill_start

    total_seconds = time.perf_counter() - bench_start
    n_failed_queries = sum(query_failures)
    n_ok_queries = len(latencies)
    throughput = n_ok_queries / query_seconds if query_seconds > 0 else 0.0

    report["health"] = health
    report["metrics"] = {
        "serve.labels_identical": 1.0 if labels_identical else 0.0,
        "serve.scrape_roundtrip_ok": scrape_ok,
        "serve.scrape_families_count": float(scrape_families),
        "serve.upload_failed": float(upload_failed),
        "serve.query_failed": float(n_failed_queries),
        "serve.uploads_count": float(n_sites),
        "serve.upload_attempts_count": float(upload_attempts),
        "serve.queries_count": float(n_ok_queries),
        "serve.labels_served_count": float(n_ok_queries * query_batch),
        "serve.bytes_up": float(bytes_up),
        "serve.query_throughput_rps": throughput,
        "serve.upload_phase_wall_seconds": upload_seconds,
        "serve.query_phase_wall_seconds": query_seconds,
        "serve.query_p50_wall_seconds": _percentile(latencies, 50),
        "serve.query_p95_wall_seconds": _percentile(latencies, 95),
        "serve.query_p99_wall_seconds": _percentile(latencies, 99),
        "serve.query_max_wall_seconds": max(latencies, default=0.0),
        "serve.journal_bytes": journal_bytes,
        "serve.journal_fsync_count": journal_fsyncs,
        "serve.journal_records_count": server_metrics.value(
            "service.journal_records"
        ),
        "serve.recovery_labels_identical": recovery_labels_identical,
        "serve.recovered_models_count": recovery_metrics.value(
            "service.recovered_models"
        ),
        "serve.recovery_wall_seconds": recovery_metrics.value(
            "service.recovery_wall_seconds"
        ),
        "serve.recovery_drill_wall_seconds": drill_seconds,
        "serve.total_wall_seconds": total_seconds,
    }
    if trace_doc is not None:
        schema_errors = validate_trace(trace_doc)
        processes = trace_doc.get("processes", {})
        expected = {"server"} | {f"site-{i}" for i in range(n_sites)}
        n_admissions = _count_named_spans(trace_doc, "serve[local_model]")
        report["trace"] = trace_doc
        report["metrics"].update(
            {
                "serve.trace_schema_ok": 0.0 if schema_errors else 1.0,
                "serve.trace_processes_ok": (
                    1.0 if expected <= set(processes) else 0.0
                ),
                "serve.trace_admissions_ok": (
                    1.0 if n_admissions == n_sites else 0.0
                ),
                "serve.trace_processes_count": float(len(processes)),
                "serve.trace_spans_count": float(
                    _count_named_spans(trace_doc, None)
                ),
            }
        )
        if schema_errors:
            report["trace_schema_errors"] = schema_errors
    return report


def _count_named_spans(doc: dict, name: str | None) -> int:
    """Spans named ``name`` anywhere in the document (all when ``None``)."""

    def count(spans: list) -> int:
        total = 0
        for span in spans:
            if name is None or span.get("name") == name:
                total += 1
            total += count(span.get("children", []))
        return total

    return count(doc.get("spans", []))


def _sweep_worker(
    host: str,
    port: int,
    dataset: str,
    cardinality: int | None,
    n_queries: int,
    query_batch: int,
    client_index: int,
    n_clients: int,
    out_queue,
) -> None:
    """One sweep client *process*: connect, walk its query slice, report.

    Module-level so the ``spawn`` start method can import it; the child
    reloads the data set itself (deterministic for a fixed name/size),
    so nothing is pickled but scalars.
    """
    data = load_dataset(dataset, cardinality=cardinality)
    points = data.points
    n_points = points.shape[0]
    indices = list(range(client_index, n_queries, n_clients))
    n_ok = n_failed = 0
    start = time.perf_counter()
    try:
        with ServiceClient(host, port) as service:
            for index in indices:
                lo = (index * query_batch) % max(n_points - query_batch, 1)
                batch = points[lo : lo + query_batch]
                labels = service.query(batch)
                if labels.size == batch.shape[0]:
                    n_ok += 1
                else:
                    n_failed += 1
    except Exception:
        n_failed += len(indices) - n_ok
    out_queue.put((client_index, n_ok, n_failed, time.perf_counter() - start))


def run_client_sweep(
    *,
    dataset: str = "A",
    cardinality: int | None = None,
    n_sites: int = 4,
    client_counts: tuple[int, ...] = (8, 16, 32),
    n_queries: int = 256,
    query_batch: int = 256,
    scheme: str = "rep_scor",
    seed: int = 42,
) -> dict:
    """Query-throughput sweep with *separate client processes*.

    The thread-based bench shares one GIL across all clients, so it
    understates what a deployment of independent site processes can pull
    from the service.  This sweep boots one service, uploads the models
    once, then for each client count spawns that many real processes
    (``multiprocessing`` spawn — each with its own interpreter and
    connection) and splits ``n_queries`` across them.

    Args:
        dataset: data set name (A/B/C).
        cardinality: data set size override.
        n_sites: client sites uploading models.
        client_counts: the swept process counts.
        n_queries: total label queries per swept point.
        query_batch: points per label query.
        scheme: local model scheme.
        seed: partitioning seed.

    Returns:
        A JSON-able report with a flat ``metrics`` dict — throughput
        entries are timing-tagged (``*_rps``), failure counts gate at
        zero (``*failed*``).
    """
    import multiprocessing

    data = load_dataset(dataset, cardinality=cardinality)
    points = data.points
    assignment = partition(points, n_sites, seed=seed)
    parts = split(points, assignment)

    report: dict = {
        "meta": {
            "dataset": data.name,
            "cardinality": int(points.shape[0]),
            "n_sites": n_sites,
            "client_counts": [int(count) for count in client_counts],
            "n_queries": n_queries,
            "query_batch": query_batch,
            "scheme": scheme,
            "seed": seed,
        }
    }
    metrics: dict[str, float] = {}
    sweep_rows = []
    context = multiprocessing.get_context("spawn")
    bench_start = time.perf_counter()
    with ServiceHandle.start(
        ServiceConfig(expected_sites=n_sites, metrics_port=None)
    ) as handle:
        upload_threads = [
            threading.Thread(
                target=run_site_worker,
                args=(handle.host, handle.port, site_id, parts[site_id]),
                kwargs={
                    "eps_local": data.eps_local,
                    "min_pts_local": data.min_pts,
                    "scheme": scheme,
                },
            )
            for site_id in range(n_sites)
        ]
        for thread in upload_threads:
            thread.start()
        for thread in upload_threads:
            thread.join()

        for n_clients in client_counts:
            out_queue = context.Queue()
            processes = [
                context.Process(
                    target=_sweep_worker,
                    args=(
                        handle.host,
                        handle.port,
                        dataset,
                        cardinality,
                        n_queries,
                        query_batch,
                        client_index,
                        n_clients,
                        out_queue,
                    ),
                )
                for client_index in range(n_clients)
            ]
            sweep_start = time.perf_counter()
            for process in processes:
                process.start()
            results = [out_queue.get() for __ in processes]
            for process in processes:
                process.join()
            wall = time.perf_counter() - sweep_start
            n_ok = sum(row[1] for row in results)
            n_failed = sum(row[2] for row in results)
            # Process exits without a result (crash before the queue
            # put) would show up here as missing queries.
            n_failed += max(0, n_queries - n_ok - n_failed)
            throughput = n_ok / wall if wall > 0 else 0.0
            label = f"clients={n_clients}"
            metrics[f"serve.sweep_query_throughput_rps[{label}]"] = throughput
            metrics[f"serve.sweep_query_failed[{label}]"] = float(n_failed)
            metrics[f"serve.sweep_queries_count[{label}]"] = float(n_ok)
            metrics[f"serve.sweep_wall_seconds[{label}]"] = wall
            sweep_rows.append(
                {
                    "n_clients": int(n_clients),
                    "n_ok": int(n_ok),
                    "n_failed": int(n_failed),
                    "wall_seconds": wall,
                    "throughput_rps": throughput,
                }
            )
    metrics["serve.sweep_total_wall_seconds"] = (
        time.perf_counter() - bench_start
    )
    metrics["serve.sweep_clients_max"] = float(max(client_counts, default=0))
    report["sweep"] = sweep_rows
    report["metrics"] = metrics
    return report


def format_sweep_summary(report: dict) -> str:
    """Human-readable client-sweep summary."""
    meta = report["meta"]
    lines = [
        f"serve-bench client sweep: data set {meta['dataset']} "
        f"({meta['cardinality']} objects, {meta['n_sites']} sites) — "
        f"{meta['n_queries']} queries of {meta['query_batch']} points per "
        "point, separate client processes",
    ]
    for row in report["sweep"]:
        lines.append(
            f"  {row['n_clients']:4d} clients: "
            f"{row['throughput_rps']:8.1f} queries/s  "
            f"({row['n_ok']} ok, {row['n_failed']} failed, "
            f"{row['wall_seconds']:.2f}s)"
        )
    return "\n".join(lines)


def record_client_sweep(report: dict, registry_root: str = ".runs") -> dict:
    """Append the client sweep to the registry (``serve-sweep`` record)."""
    from repro.obs.registry import RunRegistry

    meta = report["meta"]
    record = RunRegistry(registry_root).record(
        "serve-sweep",
        config={
            key: meta[key]
            for key in (
                "dataset",
                "cardinality",
                "n_sites",
                "client_counts",
                "n_queries",
                "query_batch",
                "scheme",
                "seed",
            )
        },
        metrics=report["metrics"],
        artifacts={"BENCH_serve_sweep.json": report},
    )
    meta["run_id"] = record["run_id"]
    return record


def format_serve_summary(report: dict) -> str:
    """Human-readable bench summary."""
    meta = report["meta"]
    metrics = report["metrics"]
    lines = [
        f"serve-bench: data set {meta['dataset']} "
        f"({meta['cardinality']} objects, {meta['n_sites']} sites) — "
        f"{meta['n_clients']} clients x {meta['n_queries']} queries "
        f"of {meta['query_batch']} points",
        f"  labels bit-identical to simulated run: "
        f"{'yes' if metrics['serve.labels_identical'] else 'NO'}",
        f"  OpenMetrics scrape strict-parsed:      "
        f"{'yes' if metrics['serve.scrape_roundtrip_ok'] else 'NO'} "
        f"({int(metrics['serve.scrape_families_count'])} families)",
        f"  failures: {int(metrics['serve.upload_failed'])} uploads, "
        f"{int(metrics['serve.query_failed'])} queries",
        f"  throughput: {metrics['serve.query_throughput_rps']:.1f} queries/s "
        f"({int(metrics['serve.labels_served_count'])} labels served)",
        f"  query latency: p50 {1e3 * metrics['serve.query_p50_wall_seconds']:.2f}ms  "
        f"p95 {1e3 * metrics['serve.query_p95_wall_seconds']:.2f}ms  "
        f"p99 {1e3 * metrics['serve.query_p99_wall_seconds']:.2f}ms  "
        f"max {1e3 * metrics['serve.query_max_wall_seconds']:.2f}ms",
        f"  journal: {int(metrics['serve.journal_bytes'])} bytes, "
        f"{int(metrics['serve.journal_records_count'])} records, "
        f"{int(metrics['serve.journal_fsync_count'])} fsyncs",
        f"  recovery drill: labels identical "
        f"{'yes' if metrics['serve.recovery_labels_identical'] else 'NO'} "
        f"({int(metrics['serve.recovered_models_count'])} models replayed "
        f"in {1e3 * metrics['serve.recovery_wall_seconds']:.2f}ms)",
        f"  phases: upload {metrics['serve.upload_phase_wall_seconds']:.2f}s, "
        f"queries {metrics['serve.query_phase_wall_seconds']:.2f}s, "
        f"total {metrics['serve.total_wall_seconds']:.2f}s",
    ]
    if "serve.trace_schema_ok" in metrics:
        lines.append(
            f"  distributed trace: schema "
            f"{'ok' if metrics['serve.trace_schema_ok'] else 'INVALID'}, "
            f"{int(metrics['serve.trace_processes_count'])} processes, "
            f"{int(metrics['serve.trace_spans_count'])} spans "
            f"(all sites shipped: "
            f"{'yes' if metrics['serve.trace_processes_ok'] else 'NO'})"
        )
    return "\n".join(lines)


def record_serve_bench(report: dict, registry_root: str = ".runs") -> dict:
    """Append the bench to the run registry (``serve-bench`` RunRecord)."""
    from repro.obs.registry import RunRegistry

    meta = report["meta"]
    artifacts = {"BENCH_serve.json": report}
    if report.get("trace") is not None:
        artifacts["TRACE_serve.json"] = report["trace"]
    record = RunRegistry(registry_root).record(
        "serve-bench",
        config={
            key: meta[key]
            for key in (
                "dataset",
                "cardinality",
                "n_sites",
                "n_clients",
                "n_queries",
                "query_batch",
                "scheme",
                "seed",
            )
        },
        metrics=report["metrics"],
        artifacts=artifacts,
    )
    meta["run_id"] = record["run_id"]
    return record


def build_bench_parser() -> argparse.ArgumentParser:
    """Parser of the ``serve-bench`` command."""
    parser = argparse.ArgumentParser(
        prog="repro serve-bench",
        description="sustained-load bench against a live DBDCService",
    )
    parser.add_argument("--dataset", default="A", help="data set name (A/B/C)")
    parser.add_argument(
        "--cardinality", type=int, default=2_000, help="data set size"
    )
    parser.add_argument("--sites", type=int, default=4, help="client sites")
    parser.add_argument(
        "--clients", type=int, default=8, help="concurrent query clients"
    )
    parser.add_argument(
        "--queries", type=int, default=200, help="total label queries"
    )
    parser.add_argument(
        "--query-batch", type=int, default=256, help="points per query"
    )
    parser.add_argument(
        "--scheme",
        default="rep_scor",
        choices=["rep_scor", "rep_kmeans"],
        help="local model scheme",
    )
    parser.add_argument("--seed", type=int, default=42, help="partition seed")
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="write-ahead journal directory (default: a fresh temporary "
        "directory per run)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="trace the bench: merge the distributed trace, gate it "
        "(serve.trace_* metrics) and store it as a TRACE_serve.json "
        "artifact",
    )
    parser.add_argument(
        "--client-sweep",
        default="",
        help="comma-separated client *process* counts; when set, run the "
        "multi-process throughput sweep after the bench (own RunRecord)",
    )
    parser.add_argument(
        "--sweep-queries",
        type=int,
        default=256,
        help="total label queries per swept client count",
    )
    parser.add_argument(
        "--registry", default=".runs", help="run registry root"
    )
    parser.add_argument(
        "--no-registry",
        action="store_true",
        help="do not append a RunRecord to the registry",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """The ``serve-bench`` command body."""
    import sys

    args = build_bench_parser().parse_args(argv)
    report = run_serve_bench(
        dataset=args.dataset,
        cardinality=args.cardinality,
        n_sites=args.sites,
        n_clients=args.clients,
        n_queries=args.queries,
        query_batch=args.query_batch,
        scheme=args.scheme,
        seed=args.seed,
        trace=args.trace,
        journal_dir=args.journal_dir,
    )
    print(format_serve_summary(report))
    if not args.no_registry:
        try:
            record = record_serve_bench(report, args.registry)
            print(f"recorded {record['run_id']} in {args.registry}")
        except Exception as error:
            print(f"warning: could not record run: {error}", file=sys.stderr)
    failed = (
        not report["metrics"]["serve.labels_identical"]
        or not report["metrics"]["serve.scrape_roundtrip_ok"]
        or not report["metrics"]["serve.recovery_labels_identical"]
        or report["metrics"]["serve.upload_failed"]
        or report["metrics"]["serve.query_failed"]
    )
    if args.trace:
        failed = failed or not (
            report["metrics"].get("serve.trace_schema_ok")
            and report["metrics"].get("serve.trace_processes_ok")
            and report["metrics"].get("serve.trace_admissions_ok")
        )
    if args.client_sweep:
        counts = tuple(
            int(part) for part in args.client_sweep.split(",") if part.strip()
        )
        sweep = run_client_sweep(
            dataset=args.dataset,
            cardinality=args.cardinality,
            n_sites=args.sites,
            client_counts=counts,
            n_queries=args.sweep_queries,
            query_batch=args.query_batch,
            scheme=args.scheme,
            seed=args.seed,
        )
        print(format_sweep_summary(sweep))
        if not args.no_registry:
            try:
                record = record_client_sweep(sweep, args.registry)
                print(f"recorded {record['run_id']} in {args.registry}")
            except Exception as error:
                print(
                    f"warning: could not record run: {error}", file=sys.stderr
                )
        if any(row["n_failed"] for row in sweep["sweep"]):
            failed = True
    return 1 if failed else 0
