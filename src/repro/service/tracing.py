"""Distributed tracing of socket sessions: the ``serve-trace`` command.

Runs an N-site, R-round streaming session over real sockets with
tracing enabled end to end — site workers and the service each record
into :class:`~repro.obs.Tracer` instances sharing one trace id, frames
carry the wire :class:`~repro.service.wire.TraceContext`, and workers
ship their span forests to the service over ``TRACE_UPLOAD`` frames —
then merges everything into ONE trace document
(:meth:`~repro.service.server.DBDCService.merged_trace_document`).

The merged document is gated three ways, mirroring what ``repro trace
--smoke`` does for the in-process path:

* **schema**: it validates against the checked-in trace schema
  (``processes`` map + per-span ``span_id`` are part of the schema);
* **attribution**: every round's wall time at every site is fully
  attributed — the per-round trace spans agree with the worker results
  within 1%, and each round span's phase children exactly partition it;
* **gating**: :func:`critical_path` names, for every round, the gating
  site and its gating phase (local DBSCAN vs upload vs await+server
  work vs relabel), plus the server-side admission / repair / broadcast
  seconds for the round.

CI runs ``python -m repro serve-trace --smoke-gates`` and regresses the
recorded metrics against ``baselines/service_trace_smoke.json``.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs import (
    MetricsRegistry,
    Tracer,
    validate_trace,
    write_chrome_trace,
    write_trace,
)
from repro.service.server import ServiceConfig, ServiceHandle
from repro.service.worker import SiteSessionResult, run_site_worker_session

__all__ = [
    "SessionTraceReport",
    "run_traced_socket_session",
    "reconcile_session_trace",
    "critical_path",
    "format_critical_path",
    "record_serve_trace",
    "main",
]

DEFAULT_TRACE_PATH = "TRACE_service.json"

#: The phase children of a worker ``round`` span, in protocol order.
ROUND_PHASES = ("open_round", "local_dbscan", "upload", "await_delta", "relabel")


@dataclass
class SessionTraceReport:
    """Outcome of one fully traced socket streaming session.

    Attributes:
        doc: the merged distributed-trace document.
        results: per-site :class:`SiteSessionResult`.
        n_sites: sites per round.
        n_rounds: rounds run.
        trace_id: the shared 128-bit trace id.
        labels_identical: whether every (round, site) label array is
            bit-identical to the in-process streaming oracle — the PR 8
            guarantee, re-checked with tracing ON.
        wall_seconds: end-to-end session wall time (slowest worker).
    """

    doc: dict
    results: dict[int, SiteSessionResult]
    n_sites: int
    n_rounds: int
    trace_id: int
    labels_identical: bool = False
    wall_seconds: float = 0.0
    problems: list = field(default_factory=list)


def _session_batches(
    dataset: str, cardinality: int | None, n_sites: int, n_rounds: int, seed: int
):
    """Round-robin per-round batches, the layout the session tests use."""
    from repro.data.datasets import load_dataset

    data = load_dataset(dataset, cardinality=cardinality, seed=seed)
    points = data.points
    chunk = points.shape[0] // n_rounds
    batches = []
    for round_index in range(n_rounds):
        block = points[round_index * chunk : (round_index + 1) * chunk]
        batches.append([block[i::n_sites] for i in range(n_sites)])
    return data, batches


def run_traced_socket_session(
    *,
    dataset: str = "A",
    cardinality: int | None = 960,
    n_sites: int = 4,
    n_rounds: int = 3,
    seed: int = 0,
    scheme: str = "rep_scor",
    timeout_s: float = 30.0,
    check_oracle: bool = True,
) -> SessionTraceReport:
    """Run one traced socket session and merge the distributed trace.

    The service and every worker trace into the same logical trace (the
    workers' tracers are constructed with the server tracer's id), so
    the merged document is one trace with one id across all processes.

    Args:
        dataset: paper data set name (``A``/``B``/``C``).
        cardinality: optional cardinality override.
        n_sites: concurrent site workers per round.
        n_rounds: streaming rounds.
        seed: dataset seed.
        scheme: local model scheme.
        timeout_s: per-operation socket timeout.
        check_oracle: also run the in-process streaming oracle and
            verify bit-identical labels (the PR 8 pin, with tracing on).
    """
    data, batches = _session_batches(
        dataset, cardinality, n_sites, n_rounds, seed
    )
    metrics = MetricsRegistry()
    server_tracer = Tracer()
    worker_tracers = {
        site_id: Tracer(trace_id=server_tracer.trace_id)
        for site_id in range(n_sites)
    }
    results: dict[int, SiteSessionResult] = {}
    start = time.perf_counter()
    with ServiceHandle.start(
        ServiceConfig(expected_sites=n_sites, metrics_port=None),
        metrics=metrics,
        tracer=server_tracer,
    ) as handle:

        def work(site_id: int) -> None:
            results[site_id] = run_site_worker_session(
                handle.host,
                handle.port,
                site_id,
                [batches[r][site_id] for r in range(n_rounds)],
                n_sites=n_sites,
                eps_local=data.eps_local,
                min_pts_local=data.min_pts,
                scheme=scheme,
                timeout_s=timeout_s,
                tracer=worker_tracers[site_id],
            )

        threads = [
            threading.Thread(target=work, args=(site_id,), daemon=True)
            for site_id in range(n_sites)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        doc = handle.merged_trace()
    wall_seconds = time.perf_counter() - start

    labels_identical = False
    problems: list[str] = []
    for site_id in range(n_sites):
        result = results.get(site_id)
        if result is None or result.error:
            problems.append(
                f"site {site_id} failed: "
                f"{result.error if result else 'no result'}"
            )
    if check_oracle and not problems:
        from repro.distributed.streaming import run_streaming_session

        oracle = run_streaming_session(
            batches,
            eps_local=data.eps_local,
            min_pts_local=data.min_pts,
            scheme=scheme,
        )
        labels_identical = all(
            np.array_equal(
                results[site_id].labels[round_index],
                oracle.labels[round_index][site_id],
            )
            for site_id in range(n_sites)
            for round_index in range(n_rounds)
        )
        if not labels_identical:
            problems.append("traced socket labels diverge from the oracle")
    return SessionTraceReport(
        doc=doc,
        results=results,
        n_sites=n_sites,
        n_rounds=n_rounds,
        trace_id=server_tracer.trace_id,
        labels_identical=labels_identical,
        wall_seconds=wall_seconds,
        problems=problems,
    )


def _walk_doc(spans, site=None, process=None):
    """Yield ``(span, site, process)`` with attr inheritance."""
    for span in spans:
        attrs = span.get("attrs", {})
        span_site = attrs.get("site", site)
        span_process = attrs.get("process", process)
        yield span, span_site, span_process
        yield from _walk_doc(span.get("children", []), span_site, span_process)


def _duration(span: dict) -> float:
    return span["wall_end"] - span["wall_start"]


def _round_spans(doc: dict) -> dict[tuple[int, int], dict]:
    """``{(round, site): round_span}`` across all worker processes."""
    out: dict[tuple[int, int], dict] = {}
    for span, site, __ in _walk_doc(doc.get("spans", [])):
        if span["name"] == "round" and site is not None:
            out[(int(span["attrs"]["round"]), int(site))] = span
    return out


def _server_round_seconds(doc: dict) -> dict[int, dict[str, float]]:
    """Per-round server-side seconds: admission / repair / broadcast.

    ``serve[local_model]`` spans cover the whole admission branch; the
    ``round_commit`` recorded inside the triggering admission is carved
    out so *admission* counts gate work only and *repair* the commit.
    ``serve[model_delta]`` covers the delta encode (broadcast).
    """
    totals: dict[int, dict[str, float]] = {}

    def entry(round_index: int) -> dict[str, float]:
        return totals.setdefault(
            round_index, {"admission": 0.0, "repair": 0.0, "broadcast": 0.0}
        )

    for span, __, __p in _walk_doc(doc.get("spans", [])):
        attrs = span.get("attrs", {})
        if "round" not in attrs:
            continue
        round_index = int(attrs["round"])
        if span["name"] == "serve[local_model]":
            entry(round_index)["admission"] += _duration(span)
        elif span["name"] == "round_commit":
            row = entry(round_index)
            row["repair"] += _duration(span)
            # The commit ran inside one serve[local_model] window.
            row["admission"] -= _duration(span)
        elif span["name"] == "serve[model_delta]":
            entry(round_index)["broadcast"] += _duration(span)
    for row in totals.values():
        row["admission"] = max(row["admission"], 0.0)
    return totals


def reconcile_session_trace(
    report: SessionTraceReport, *, tolerance: float = 0.01
) -> list[str]:
    """Gate the merged trace: schema, attribution, completeness.

    Attribution is exact by construction — the round spans are recorded
    from the same ``perf_counter`` reads that fill
    ``SiteSessionResult.round_wall_seconds``, and the phase children
    share boundary reads so they exactly partition each round —
    ``tolerance`` (relative) only absorbs float round-trips.

    Returns:
        Human-readable problems (empty = fully reconciled).
    """
    doc = report.doc
    problems = [f"schema: {err}" for err in validate_trace(doc)]
    problems += list(report.problems)

    rounds = _round_spans(doc)
    for site_id in range(report.n_sites):
        result = report.results.get(site_id)
        if result is None:
            continue
        for round_index in range(report.n_rounds):
            span = rounds.get((round_index, site_id))
            if span is None:
                problems.append(
                    f"round span missing for round {round_index} "
                    f"site {site_id}"
                )
                continue
            span_s = _duration(span)
            if round_index < len(result.round_wall_seconds):
                result_s = result.round_wall_seconds[round_index]
                if abs(span_s - result_s) > tolerance * max(result_s, 1e-9):
                    problems.append(
                        f"round {round_index} site {site_id}: span "
                        f"{span_s:.6f}s vs result {result_s:.6f}s"
                    )
            children = span.get("children", [])
            names = [child["name"] for child in children]
            if names != list(ROUND_PHASES):
                problems.append(
                    f"round {round_index} site {site_id}: phases {names} "
                    f"!= {list(ROUND_PHASES)}"
                )
                continue
            covered = sum(_duration(child) for child in children)
            if abs(covered - span_s) > tolerance * max(span_s, 1e-9):
                problems.append(
                    f"round {round_index} site {site_id}: phases cover "
                    f"{covered:.6f}s of {span_s:.6f}s"
                )

    server = _server_round_seconds(doc)
    for round_index in range(report.n_rounds):
        if round_index not in server:
            problems.append(f"no server spans for round {round_index}")
        elif server[round_index]["repair"] <= 0.0:
            problems.append(f"no round_commit span for round {round_index}")

    expected_uploads = report.n_sites * report.n_rounds
    n_admissions = sum(
        1
        for span, __, __p in _walk_doc(doc.get("spans", []))
        if span["name"] == "serve[local_model]"
    )
    if n_admissions != expected_uploads:
        problems.append(
            f"{n_admissions} serve[local_model] spans, "
            f"expected {expected_uploads}"
        )

    trace_hex = f"{report.trace_id:032x}"
    stamped = [
        span
        for span, __, __p in _walk_doc(doc.get("spans", []))
        if span["name"] == "serve[local_model]"
        and span.get("attrs", {}).get("trace_id") == trace_hex
    ]
    if len(stamped) != n_admissions:
        problems.append(
            f"only {len(stamped)}/{n_admissions} admissions carry the "
            f"session trace id (context not propagated?)"
        )

    processes = doc.get("processes", {})
    expected_processes = {"server"} | {
        f"site-{site_id}" for site_id in range(report.n_sites)
    }
    missing = expected_processes - set(processes)
    if missing:
        problems.append(f"processes missing from merged doc: {sorted(missing)}")
    return problems


def critical_path(doc: dict) -> list[dict]:
    """Per-round critical-path rows from a merged session trace.

    For each round: the *gating site* is the one whose round span is
    longest (the round cannot commit before its slowest site), the
    *gating phase* is that site's longest phase child, and the server
    columns break the round's server work into admission (gate checks),
    repair (the commit's model fold) and broadcast (delta encodes).
    """
    rounds = _round_spans(doc)
    server = _server_round_seconds(doc)
    by_round: dict[int, list[tuple[int, dict]]] = {}
    for (round_index, site_id), span in rounds.items():
        by_round.setdefault(round_index, []).append((site_id, span))
    rows: list[dict] = []
    for round_index in sorted(by_round):
        site_id, span = max(
            by_round[round_index], key=lambda pair: _duration(pair[1])
        )
        children = span.get("children", [])
        phase = (
            max(children, key=_duration) if children else None
        )
        row = {
            "round": round_index,
            "gating_site": site_id,
            "site_wall_seconds": _duration(span),
            "gating_phase": phase["name"] if phase else "",
            "phase_seconds": _duration(phase) if phase else 0.0,
            "n_sites": len(by_round[round_index]),
        }
        row.update(
            {
                f"server_{key}_seconds": value
                for key, value in server.get(
                    round_index,
                    {"admission": 0.0, "repair": 0.0, "broadcast": 0.0},
                ).items()
            }
        )
        rows.append(row)
    return rows


def format_critical_path(rows: list[dict]) -> str:
    """Human-readable per-round critical-path report."""
    if not rows:
        return "critical path: no round spans in trace"
    lines = ["round critical path (gating site / phase, server breakdown):"]
    for row in rows:
        lines.append(
            f"  round {row['round']}: site {row['gating_site']} gates at "
            f"{row['site_wall_seconds']:.4f}s "
            f"({row['gating_phase']} {row['phase_seconds']:.4f}s); "
            f"server admission {row['server_admission_seconds'] * 1e3:.2f}ms, "
            f"repair {row['server_repair_seconds'] * 1e3:.2f}ms, "
            f"broadcast {row['server_broadcast_seconds'] * 1e3:.2f}ms"
        )
    return "\n".join(lines)


def _count_spans(doc: dict) -> int:
    return sum(1 for __ in _walk_doc(doc.get("spans", [])))


def record_serve_trace(
    report: SessionTraceReport,
    rows: list[dict],
    problems: list[str],
    args: argparse.Namespace,
    registry_root: str,
) -> dict:
    """Append one serve-trace run to the run registry.

    The boolean gates (``*_ok`` + ``labels_identical``) regress at zero
    tolerance and survive ``--ignore-timing``; counts are deterministic
    for the pinned seed; wall clocks are timing-tagged.
    """
    from repro.obs.registry import RunRegistry

    doc = report.doc
    gating_named = bool(rows) and len(rows) == report.n_rounds and all(
        row["gating_phase"] for row in rows
    )
    attribution_problems = [p for p in problems if not p.startswith("schema:")]
    metrics: dict = {
        "serve_trace.schema_ok": float(
            not any(p.startswith("schema:") for p in problems)
        ),
        "serve_trace.attribution_ok": float(not attribution_problems),
        "serve_trace.gating_named_ok": float(gating_named),
        "serve_trace.labels_identical": float(report.labels_identical),
        "serve_trace.rounds_count": float(report.n_rounds),
        "serve_trace.sites_count": float(report.n_sites),
        "serve_trace.spans_count": float(_count_spans(doc)),
        "serve_trace.processes_count": float(len(doc.get("processes", {}))),
        "serve_trace.wall_seconds": report.wall_seconds,
    }
    for row in rows:
        metrics[
            f"serve_trace.round_wall_seconds[{row['round']}]"
        ] = row["site_wall_seconds"]
    return RunRegistry(registry_root).record(
        "serve-trace",
        config={
            "dataset": args.dataset,
            "cardinality": args.cardinality,
            "n_sites": args.sites,
            "n_rounds": args.rounds,
            "scheme": args.scheme,
            "seed": args.seed,
        },
        metrics=metrics,
        metrics_registry=doc.get("metrics"),
        artifacts={"TRACE_service.json": doc},
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point: ``python -m repro serve-trace``."""
    parser = argparse.ArgumentParser(
        description="Traced multi-process socket session + merged trace"
    )
    parser.add_argument("--dataset", default="A")
    parser.add_argument("--cardinality", type=int, default=960)
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--scheme", default="rep_scor",
                        choices=["rep_scor", "rep_kmeans"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--trace-out", default=DEFAULT_TRACE_PATH)
    parser.add_argument("--chrome-out", default=None,
                        help="also write Chrome trace_event JSON here")
    parser.add_argument("--no-oracle", action="store_true",
                        help="skip the in-process bit-identity check")
    parser.add_argument("--registry", default=".runs",
                        help="run registry root")
    parser.add_argument("--no-registry", action="store_true",
                        help="skip the RunRecord append")
    args = parser.parse_args(argv)

    report = run_traced_socket_session(
        dataset=args.dataset,
        cardinality=args.cardinality,
        n_sites=args.sites,
        n_rounds=args.rounds,
        seed=args.seed,
        scheme=args.scheme,
        timeout_s=args.timeout,
        check_oracle=not args.no_oracle,
    )
    problems = reconcile_session_trace(report)
    rows = critical_path(report.doc)
    print(
        f"traced socket session: {args.sites} sites x {args.rounds} rounds, "
        f"trace {report.trace_id:032x}, {_count_spans(report.doc)} spans, "
        f"{len(report.doc.get('processes', {}))} processes"
    )
    print(format_critical_path(rows))

    if not getattr(args, "no_registry", False):
        registry_root = getattr(args, "registry", ".runs")
        try:
            record = record_serve_trace(
                report, rows, problems, args, registry_root
            )
        except Exception as error:  # never fail the run over bookkeeping
            print(f"warning: could not record run: {error}", file=sys.stderr)
        else:
            print(f"recorded {record['run_id']} in {registry_root}")
    path = write_trace(report.doc, args.trace_out)
    print(f"wrote {path}")
    if args.chrome_out:
        chrome_path = write_chrome_trace(report.doc, args.chrome_out)
        print(f"wrote {chrome_path} (load in chrome://tracing)")

    failed = bool(problems) or not rows or len(rows) != args.rounds
    for problem in problems:
        print(f"TRACE GATE FAIL: {problem}")
    if failed and not problems:
        print(f"TRACE GATE FAIL: {len(rows)}/{args.rounds} rounds in report")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
