"""CLI entry points of service mode: ``serve`` and ``serve-worker``.

Dispatched by :func:`repro.cli.main` (so both ``python -m repro serve``
and the ``repro`` console script reach them)::

    repro serve --port 7171 --metrics-port 9464 --expected-sites 4
    repro serve-worker --port 7171 --site-id 0 --sites 4 --dataset A

A worker process loads the shared data set, takes its partition (same
``partition(seed)`` every site and the simulated runner use, so the
deployment reproduces the in-process run bit for bit) and runs the full
protocol against the live service.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["serve_main", "worker_main"]


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser of the ``serve`` command."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="run the DBDC central server as a socket service",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7171, help="protocol port (0 = ephemeral)"
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=9464,
        help="HTTP OpenMetrics port (0 = ephemeral, -1 = disabled)",
    )
    parser.add_argument(
        "--expected-sites",
        type=int,
        default=None,
        help="sites per round (build the global model when all arrived)",
    )
    parser.add_argument(
        "--eps-global",
        type=float,
        default=None,
        help="server merge radius (default: the paper's max eps_range)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="admission deadline in service-uptime seconds",
    )
    parser.add_argument(
        "--quorum",
        type=float,
        default=0.0,
        help="minimum admitted fraction for a healthy round",
    )
    parser.add_argument("--metric", default="euclidean", help="distance metric")
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        help="per-connection idle deadline in seconds",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="write-ahead journal directory (enables crash-restart "
        "recovery; replayed on startup when it already holds state)",
    )
    parser.add_argument(
        "--no-journal-fsync",
        action="store_true",
        help="skip the per-record fsync (faster, loses the power-failure "
        "guarantee; process crashes are still covered)",
    )
    parser.add_argument(
        "--snapshot-bytes",
        type=int,
        default=4 * 1024 * 1024,
        help="compact the journal into a snapshot once the log exceeds "
        "this many bytes",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission-queue bound: shed work requests beyond this many "
        "in flight with a typed 'overloaded' reply",
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="refuse connections beyond this many concurrent ones",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=0.05,
        help="retry_after hint (seconds) stamped on overloaded replies",
    )
    return parser


def serve_main(argv: list[str] | None = None) -> int:
    """Run a :class:`DBDCService` in the foreground until shutdown."""
    import asyncio

    from repro.service.server import DBDCService, ServiceConfig

    args = build_serve_parser().parse_args(argv)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        metrics_port=None if args.metrics_port < 0 else args.metrics_port,
        eps_global=args.eps_global,
        metric=args.metric,
        expected_sites=args.expected_sites,
        deadline_s=args.deadline,
        quorum=args.quorum,
        idle_timeout_s=args.idle_timeout,
        journal_dir=args.journal_dir,
        journal_fsync=not args.no_journal_fsync,
        journal_snapshot_bytes=args.snapshot_bytes,
        max_inflight_requests=args.max_inflight,
        max_connections=args.max_connections,
        retry_after_s=args.retry_after,
    )

    async def run() -> None:
        service = DBDCService(config)
        await service.start()
        metrics = service.metrics_bound_port
        scrape = (
            f", metrics on http://{config.host}:{metrics}/metrics"
            if metrics
            else ""
        )
        print(
            f"DBDC service on {config.host}:{service.bound_port}{scrape}",
            flush=True,
        )
        try:
            await service.serve_until_shutdown()
        except asyncio.CancelledError:
            await service.stop()
            raise

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted, shutting down", file=sys.stderr)
    return 0


def build_worker_parser() -> argparse.ArgumentParser:
    """Parser of the ``serve-worker`` command."""
    parser = argparse.ArgumentParser(
        prog="repro serve-worker",
        description="run one DBDC site against a live service",
    )
    parser.add_argument("--host", default="127.0.0.1", help="service host")
    parser.add_argument(
        "--port", type=int, required=True, help="service port"
    )
    parser.add_argument(
        "--site-id", type=int, required=True, help="this site's id"
    )
    parser.add_argument(
        "--sites", type=int, default=4, help="total sites in the deployment"
    )
    parser.add_argument("--dataset", default="A", help="data set name (A/B/C)")
    parser.add_argument(
        "--cardinality", type=int, default=None, help="data set size override"
    )
    parser.add_argument(
        "--scheme",
        default="rep_scor",
        choices=["rep_scor", "rep_kmeans"],
        help="local model scheme",
    )
    parser.add_argument("--seed", type=int, default=42, help="partition seed")
    parser.add_argument(
        "--timeout", type=float, default=30.0, help="socket timeout seconds"
    )
    parser.add_argument(
        "--await-global",
        type=float,
        default=60.0,
        help="seconds to wait for the global model",
    )
    return parser


def worker_main(argv: list[str] | None = None) -> int:
    """Run one site worker process: partition, cluster, upload, relabel."""
    from repro.data.datasets import load_dataset
    from repro.distributed.partition import partition, split
    from repro.service.worker import run_site_worker

    args = build_worker_parser().parse_args(argv)
    if not 0 <= args.site_id < args.sites:
        print(
            f"site-id {args.site_id} out of range for {args.sites} sites",
            file=sys.stderr,
        )
        return 2
    data = load_dataset(args.dataset, cardinality=args.cardinality)
    assignment = partition(data.points, args.sites, seed=args.seed)
    parts = split(data.points, assignment)
    result = run_site_worker(
        args.host,
        args.port,
        args.site_id,
        parts[args.site_id],
        eps_local=data.eps_local,
        min_pts_local=data.min_pts,
        scheme=args.scheme,
        timeout_s=args.timeout,
        await_global_s=args.await_global,
    )
    summary = {
        "site_id": result.site_id,
        "verdict": result.verdict,
        "n_objects": result.n_objects,
        "n_labeled": int((result.labels >= 0).sum()),
        "n_noise": int((result.labels < 0).sum()),
        "upload_attempts": result.upload_attempts,
        "bytes_sent": result.bytes_sent,
        "wall_seconds": round(result.wall_seconds, 6),
    }
    if result.error:
        summary["error"] = result.error
    print(json.dumps(summary, sort_keys=True))
    return 0 if result.verdict == "admitted" else 1
