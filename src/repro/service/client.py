"""Blocking client API for a live :class:`~repro.service.server.DBDCService`.

:class:`ServiceClient` wraps one :class:`~repro.service.transport.SocketTransport`
connection with the protocol verbs a site (or an operator tool) needs:

>>> with ServiceClient("127.0.0.1", 7171, site_id=0) as client:   # doctest: +SKIP
...     client.submit(local_model)
...     model = client.await_global_model(timeout_s=30.0)
...     labels = client.query(points)

Every method is synchronous and raises typed errors —
:class:`~repro.service.transport.ServiceError` for protocol-level
refusals (quarantine, deadline miss, no model yet),
:class:`~repro.service.wire.WireError` for malformed traffic, ``OSError``
for socket failures.  Nothing blocks past the transport timeout.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.models import GlobalModel, LocalModel
from repro.service import wire
from repro.service.transport import ServiceError, SocketTransport

__all__ = ["ServiceClient", "ClockSync", "sync_clock", "upload_trace"]


class ClockSync:
    """One NTP-style clock-offset estimate for a connection.

    Attributes:
        offset_s: estimated ``server_clock - client_clock`` in
            ``perf_counter`` seconds; *add* it to client timestamps to
            place them on the server's timeline.
        rtt_s: measured round-trip time net of server hold time — the
            uncertainty radius of ``offset_s``.
    """

    __slots__ = ("offset_s", "rtt_s")

    def __init__(self, offset_s: float, rtt_s: float) -> None:
        self.offset_s = offset_s
        self.rtt_s = rtt_s


def sync_clock(transport: SocketTransport) -> ClockSync:
    """Estimate the server/client ``perf_counter`` offset.

    A single NTP-style exchange over a ``TRACE_UPLOAD`` probe: the
    client stamps send/receive times ``t0``/``t3``, the server answers
    with its receive/send times ``t1``/``t2``, and the offset is
    ``((t1 - t0) + (t2 - t3)) / 2`` — exact when the two directions are
    symmetric, otherwise off by at most half the asymmetry (bounded by
    ``rtt_s``).
    """
    t0 = time.perf_counter()
    response = transport.request(
        wire.FrameKind.TRACE_UPLOAD,
        wire.encode_json({"probe": True, "client_send_wall": t0}),
    )
    t3 = time.perf_counter()
    reply = wire.decode_json(response.payload)
    t1 = float(reply["server_recv_wall"])
    t2 = float(reply["server_send_wall"])
    return ClockSync(
        offset_s=((t1 - t0) + (t2 - t3)) / 2.0,
        rtt_s=(t3 - t0) - (t2 - t1),
    )


def upload_trace(
    transport: SocketTransport,
    tracer,
    *,
    process: str,
    site: int | None = None,
) -> str:
    """Ship a tracer's span forest to the service for merging.

    Runs a :func:`sync_clock` exchange first, then uploads the exported
    spans together with the measured offset so the server can place the
    remote lane on its own timeline.  No-op (returns ``"disabled"``)
    when the tracer is off — the untraced path sends nothing.
    """
    if not tracer.enabled:
        return "disabled"
    sync = sync_clock(transport)
    document = {
        "process": process,
        "site": site,
        "trace_id": tracer.trace_id,
        "wall_origin": tracer.wall_origin,
        "clock_offset_s": sync.offset_s,
        "rtt_s": sync.rtt_s,
        "spans": tracer.export_spans(),
    }
    response = transport.request(
        wire.FrameKind.TRACE_UPLOAD, wire.encode_json(document)
    )
    status, __ = wire.decode_status(response.payload)
    return status


class ServiceClient:
    """A synchronous DBDC protocol client over one TCP connection.

    Args:
        host: service host.
        port: service port.
        site_id: the site id stamped on outgoing frames (``SERVER_ID``
            for operator tools that are not a site).
        timeout_s: per-operation socket timeout.
        transport: inject a pre-built transport (tests); overrides
            ``host``/``port``.
        tracer: forwarded to the built transport — outgoing frames then
            carry this tracer's trace context (see
            :meth:`SocketTransport.current_context`).
        metrics: forwarded to the built transport (per-frame-kind byte
            counters).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        site_id: int = wire.SERVER_ID,
        timeout_s: float = 30.0,
        transport: SocketTransport | None = None,
        tracer=None,
        metrics=None,
    ) -> None:
        self.transport = transport or SocketTransport(
            host,
            port,
            site_id=site_id,
            timeout_s=timeout_s,
            tracer=tracer,
            metrics=metrics,
        )
        self.site_id = self.transport.site_id

    @property
    def tracer(self):
        """The transport's tracer (:data:`~repro.obs.NULL_TRACER` when off)."""
        return self.transport.tracer

    @property
    def server_epoch(self) -> int | None:
        """The last server epoch observed on this connection.

        A durability-aware server stamps its generation counter on every
        status reply; a change mid-session means the server crashed and
        recovered between two requests.  ``None`` until a stamped reply
        arrives.
        """
        return self.transport.last_epoch

    def _ack_status(self, response) -> str:
        """Decode an ACK status payload, tracking the server epoch."""
        status, __, epoch, __ = wire.decode_status_ext(response.payload)
        if epoch is not None:
            self.transport.last_epoch = epoch
        return status

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        """Open the underlying connection (idempotent)."""
        self.transport.connect()
        return self

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self.transport.close()

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # protocol verbs
    # ------------------------------------------------------------------
    def submit(self, model: LocalModel) -> str:
        """Upload one local model through the admission gate.

        Returns:
            The admission verdict (``"admitted"``).

        Raises:
            ServiceError: when the gate quarantines or rejects the model
                (``error.status`` carries the verdict).
        """
        response = self.transport.request(
            wire.FrameKind.LOCAL_MODEL, wire.encode_local_model(model)
        )
        return self._ack_status(response)

    def await_global_model(self, timeout_s: float = 30.0) -> GlobalModel:
        """Block until the global model exists, then fetch it.

        Args:
            timeout_s: how long the *server* may hold the request open
                waiting for a build (capped by its config).

        Raises:
            ServiceError: ``status == "no_model"`` when the timeout
                passes without a build.
        """
        response = self.transport.request(
            wire.FrameKind.AWAIT_GLOBAL, wire.encode_await_global(timeout_s)
        )
        return wire.decode_global_model(response.payload)

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def open_round(self, round_index: int) -> str:
        """Open streaming round ``round_index`` (idempotent per round).

        Raises:
            ServiceError: ``status == "bad_round"`` when the index is
                not the next round (or another round is still open).
        """
        response = self.transport.request(
            wire.FrameKind.ROUND_OPEN, wire.encode_round_open(round_index)
        )
        return self._ack_status(response)

    def commit_round(self, round_index: int) -> str:
        """Explicitly commit round ``round_index`` (partial rounds).

        Sessions running with ``expected_sites`` auto-commit; this verb
        closes a round early when some sites are known lost.
        """
        response = self.transport.request(
            wire.FrameKind.ROUND_COMMIT, wire.encode_round_commit(round_index)
        )
        return self._ack_status(response)

    def await_model_delta(
        self,
        round_index: int,
        known_model: GlobalModel | None = None,
        *,
        timeout_s: float = 30.0,
    ) -> GlobalModel:
        """Block until ``round_index`` commits, then fetch the model.

        Representatives strictly append across rounds, so the reply only
        carries the representatives beyond ``known_model`` plus the full
        (small) label vector; the client reassembles the complete model.

        Args:
            round_index: the round whose commit to wait for.
            known_model: the model from the previous round (``None`` on
                round 0 — the full model is shipped).
            timeout_s: how long the server may hold the request open.

        Raises:
            ServiceError: ``"no_model"`` on timeout, ``"shutting_down"``
                when the service stops first, ``"bad_delta"`` when
                ``known_model`` is not a prefix of the server's model.
        """
        known = (
            0 if known_model is None else len(known_model.representatives)
        )
        response = self.transport.request(
            wire.FrameKind.MODEL_DELTA,
            wire.encode_delta_request(round_index, known, timeout_s),
        )
        delta = wire.decode_model_delta(response.payload)
        return wire.apply_model_delta(known_model, delta)

    def query(self, points: np.ndarray) -> np.ndarray:
        """Label a batch of points against the current global model.

        Args:
            points: shape ``(n, d)``.

        Returns:
            Global labels, shape ``(n,)`` (noise = -1).
        """
        response = self.transport.request(
            wire.FrameKind.LABEL_QUERY, wire.encode_points(points)
        )
        return wire.decode_labels(response.payload)

    def health(self) -> dict:
        """The service's health document."""
        response = self.transport.request(wire.FrameKind.HEALTH)
        return wire.decode_json(response.payload)

    def metrics_text(self) -> str:
        """The OpenMetrics exposition, fetched over the protocol port."""
        response = self.transport.request(wire.FrameKind.METRICS)
        return response.payload.decode("utf-8")

    def sync_clock(self) -> ClockSync:
        """Estimate this connection's server-clock offset (see
        :func:`sync_clock`)."""
        return sync_clock(self.transport)

    def upload_trace(self, *, process: str, site: int | None = None) -> str:
        """Ship the client tracer's spans to the service (see
        :func:`upload_trace`)."""
        return upload_trace(
            self.transport, self.tracer, process=process, site=site
        )

    def shutdown(self) -> bool:
        """Ask the service to shut down gracefully.

        Returns:
            Whether the service acknowledged (``False`` if the
            connection died first — the service may already be gone).
        """
        try:
            self.transport.request(wire.FrameKind.SHUTDOWN)
            return True
        except (OSError, wire.WireError, ServiceError):
            return False
