"""DBDC as a live asyncio socket service.

:class:`DBDCService` hosts the unchanged
:class:`~repro.distributed.server.CentralServer` behind the wire
protocol of :mod:`repro.service.wire`: sites connect over TCP, upload
local models (admitted through the same integrity/deadline gate the
simulated path uses), await the global model, and issue label queries;
operators probe health frames and scrape a plaintext HTTP endpoint
serving the existing OpenMetrics exporter.

Determinism contract: before every build the admitted models are
stably sorted by site id.  A fault-free in-process run admits models in
site order, so a socket run whose uploads race each other still builds
the *same* global model — the bit-identical-labels guarantee the
integration tests pin.

Concurrency model: one event loop owns all protocol state, so admission
and build are race-free by construction; only the numpy-heavy label
relabeling runs in the default executor (on a model snapshot) to keep
the loop responsive under query load.  Per-connection deadlines bound
every read (one budget per frame, header and payload together), and
:meth:`DBDCService.stop` drains connections gracefully — in-flight
waiters receive a typed ``shutting_down`` frame before their connection
closes.

Streaming sessions (ROUND_OPEN / ROUND_COMMIT / MODEL_DELTA) put the
incremental protocol behind the same wire: round 0 commits through the
standard sorted build, every later round folds its admitted models into
the session model via
:class:`~repro.core.global_model.GlobalModelRepairer` — representatives
strictly append, so MODEL_DELTA replies are exact.  Sites submit each
round's batch under a fresh *effective* site id, which keeps the
``(site_id, local_cluster_id)`` inheritance keys of the relabel step
collision-free across rounds.  See ``docs/service.md``.

Durability (ISSUE 10): with ``journal_dir`` configured, every admitted
model, round open/commit and quarantine decision is written to a
CRC-guarded write-ahead journal (:mod:`repro.service.journal`) *before*
it is acknowledged; :meth:`DBDCService.start` replays snapshot + journal
through the very same admission/commit code path, so a crash-restarted
server is bit-identical to one that never crashed.  Every status reply
carries the server *epoch* (generation counter), duplicate session
resubmissions are acknowledged idempotently, and bounded admission
(``max_inflight_requests`` / ``max_connections``) sheds overload with
typed ``overloaded`` replies carrying a retry hint.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.clustering.labels import NOISE
from repro.core.global_model import GlobalModelRepairer
from repro.core.relabel import relabel_site
from repro.distributed.server import CentralServer
from repro.obs import MetricsRegistry, NULL_TRACER, shift_span_times, trace_document
from repro.obs.openmetrics import OPENMETRICS_CONTENT_TYPE, render_registry
from repro.service import journal, wire

__all__ = ["ServiceConfig", "DBDCService", "ServiceHandle"]


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of one :class:`DBDCService`.

    Attributes:
        host: bind address.
        port: protocol port (0 = ephemeral, the tests' default).
        metrics_port: HTTP metrics port (0 = ephemeral, ``None`` =
            disable the endpoint).
        eps_global: server merge radius (``None`` → the paper default).
        metric: distance metric name.
        index_kind: neighbor index for the global DBSCAN.
        expected_sites: sites of one protocol round; when set, the
            global model is built as soon as that many models are
            admitted.  ``None`` = build lazily on first demand.
        deadline_s: admission deadline in *service uptime* seconds (the
            socket path's arrival clock), ``None`` = never reject.
        quorum: minimum admitted fraction for a healthy round.
        relabel_kernel: kernel used to answer label queries.
        idle_timeout_s: per-connection deadline — a connection that
            sends no complete frame for this long is closed.  The budget
            covers one *whole* frame: header and payload reads share a
            single deadline, so a slow-loris client cannot stretch a
            frame to twice the configured limit.
        await_timeout_cap_s: upper bound an AWAIT_GLOBAL or MODEL_DELTA
            request may block, whatever timeout the client asked for.
        max_frame_bytes: reject frames declaring more payload than this.
        shutdown_grace_s: how long :meth:`DBDCService.stop` waits for
            in-flight requests (e.g. released AWAIT_GLOBAL waiters) to
            flush their response frames before cancelling connections.
        journal_dir: directory of the write-ahead journal; ``None``
            disables durability (the pre-journal behavior).  When set,
            every admitted model, round open/commit and quarantine
            decision is journaled *before* it is acknowledged, and
            :meth:`DBDCService.start` replays snapshot + journal so a
            restarted server is bit-identical to one that never crashed.
        journal_fsync: fsync the journal per record (the durability
            guarantee; disable only to measure the fsync cost).
        journal_snapshot_bytes: compact the journal into its snapshot
            once the log outgrows this (at round-commit safe points).
        max_inflight_requests: cap on concurrently dispatching *work*
            frames (LOCAL_MODEL / LABEL_QUERY / TRACE_UPLOAD); excess
            requests are shed with a typed ``overloaded`` reply carrying
            ``retry_after_s`` instead of queueing unboundedly.  Parked
            AWAIT_GLOBAL / MODEL_DELTA waiters never count — they hold
            no work, and counting them would deadlock small caps.
            ``None`` = unbounded (the pre-overload behavior).
        max_connections: cap on concurrent protocol connections; excess
            connects receive one ``overloaded`` frame and are closed.
            ``None`` = unbounded.
        retry_after_s: the backoff hint stamped on ``overloaded``
            replies.
    """

    host: str = "127.0.0.1"
    port: int = 0
    metrics_port: int | None = 0
    eps_global: float | None = None
    metric: str = "euclidean"
    index_kind: str = "auto"
    expected_sites: int | None = None
    deadline_s: float | None = None
    quorum: float = 0.0
    relabel_kernel: str = "auto"
    idle_timeout_s: float = 30.0
    await_timeout_cap_s: float = 120.0
    max_frame_bytes: int = wire.DEFAULT_MAX_PAYLOAD
    shutdown_grace_s: float = 5.0
    journal_dir: str | None = None
    journal_fsync: bool = True
    journal_snapshot_bytes: int = 4 * 1024 * 1024
    max_inflight_requests: int | None = None
    max_connections: int | None = None
    retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        if self.idle_timeout_s <= 0:
            raise ValueError(
                f"idle_timeout_s must be positive, got {self.idle_timeout_s}"
            )
        if self.await_timeout_cap_s <= 0:
            raise ValueError(
                "await_timeout_cap_s must be positive, got "
                f"{self.await_timeout_cap_s}"
            )
        if self.max_frame_bytes < wire.HEADER_SIZE:
            raise ValueError(
                f"max_frame_bytes must be >= {wire.HEADER_SIZE}, "
                f"got {self.max_frame_bytes}"
            )
        if self.shutdown_grace_s < 0:
            raise ValueError(
                f"shutdown_grace_s must be >= 0, got {self.shutdown_grace_s}"
            )
        if self.journal_snapshot_bytes <= 0:
            raise ValueError(
                "journal_snapshot_bytes must be positive, got "
                f"{self.journal_snapshot_bytes}"
            )
        if (
            self.max_inflight_requests is not None
            and self.max_inflight_requests < 1
        ):
            raise ValueError(
                "max_inflight_requests must be >= 1, got "
                f"{self.max_inflight_requests}"
            )
        if self.max_connections is not None and self.max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be positive, got {self.retry_after_s}"
            )


#: Frame kinds that consume the bounded admission budget; everything
#: else (health, metrics, parked waiters) is cheap or must never shed.
_WORK_KINDS = frozenset(
    {
        wire.FrameKind.LOCAL_MODEL,
        wire.FrameKind.LABEL_QUERY,
        wire.FrameKind.TRACE_UPLOAD,
    }
)


@dataclass
class _StreamRound:
    """State of the streaming session's currently open round."""

    index: int
    opened_at_s: float
    models: list = field(default_factory=list)


class DBDCService:
    """The central server as a long-running asyncio socket service.

    Args:
        config: service configuration.
        metrics: optional shared registry (fresh one otherwise); the
            hosted ``CentralServer`` records its ``server.*`` metrics
            into the same registry the HTTP endpoint serves.
        tracer: optional :class:`~repro.obs.Tracer` for distributed
            tracing — the service records ``serve[...]`` /
            ``round_commit`` spans, accepts ``TRACE_UPLOAD`` span
            forests from remote processes, and merges everything into
            one document (:meth:`merged_trace_document`).  The default
            :data:`~repro.obs.NULL_TRACER` keeps serving allocation-free.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: TRACE_UPLOAD documents from remote processes, merge inputs.
        self._remote_traces: list[dict] = []
        self.server = CentralServer(
            self.config.eps_global,
            metric=self.config.metric,
            index_kind=self.config.index_kind,
            deadline_s=self.config.deadline_s,
            quorum=self.config.quorum,
            expected_sites=self.config.expected_sites,
            metrics=self.metrics,
        )
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._busy: set[asyncio.Task] = set()
        self._built = asyncio.Event()
        self._shutdown = asyncio.Event()
        self._model_dirty = False
        self._n_builds = 0
        self._started_monotonic = 0.0
        self._frames_total = 0
        self._n_shutdown_notices = 0
        # Streaming-session state: activated by the first ROUND_OPEN.
        self._session_active = False
        self._round: _StreamRound | None = None
        self._rounds_committed = 0
        self._repairer: GlobalModelRepairer | None = None
        self._session_model = None
        self._commit_events: dict[int, asyncio.Event] = {}
        self._n_repairs = 0
        # Durability + overload state (ISSUE 10): the journal is only
        # attached *after* recovery replay, so replaying never journals.
        self._journal: journal.WriteAheadJournal | None = None
        self._epoch = 0
        self._recovered_models = 0
        self._recovery_wall_s = 0.0
        self._session_site_ids: set[int] = set()
        self._inflight = 0
        self._n_load_shed = 0
        self._n_connections_refused = 0
        self._n_duplicate_uploads = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def bound_port(self) -> int:
        """The protocol port actually bound (after :meth:`start`)."""
        assert self._asyncio_server is not None, "service not started"
        return self._asyncio_server.sockets[0].getsockname()[1]

    @property
    def metrics_bound_port(self) -> int | None:
        """The HTTP metrics port actually bound (``None`` if disabled)."""
        if self._http_server is None:
            return None
        return self._http_server.sockets[0].getsockname()[1]

    @property
    def uptime_s(self) -> float:
        """Seconds since :meth:`start` — the socket path's arrival clock."""
        return time.monotonic() - self._started_monotonic

    async def start(self) -> None:
        """Bind the protocol and metrics listeners.

        With a ``journal_dir`` configured, the snapshot + journal are
        replayed *before* the listeners bind: no client can observe a
        half-recovered server.
        """
        self._started_monotonic = time.monotonic()
        if self.config.journal_dir is not None:
            self._recover_from_journal()
        self._asyncio_server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        if self.config.metrics_port is not None:
            self._http_server = await asyncio.start_server(
                self._on_http_connection, self.config.host, self.config.metrics_port
            )
        self.metrics.set("service.up", 1)

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain connections.

        Setting the shutdown event releases every in-flight AWAIT_GLOBAL
        / MODEL_DELTA waiter (their wait races the event), and each
        replies to its client with a typed ``shutting_down`` frame before
        its serve loop exits.  Those in-dispatch connections get a grace
        window to flush that frame; only connections still idle after it
        (parked in a read, no request in flight) are cancelled.
        """
        self._shutdown.set()
        for listener in (self._asyncio_server, self._http_server):
            if listener is not None:
                listener.close()
        for listener in (self._asyncio_server, self._http_server):
            if listener is not None:
                await listener.wait_closed()
        busy = {task for task in self._busy if not task.done()}
        if busy:
            await asyncio.wait(busy, timeout=self.config.shutdown_grace_s)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._journal is not None:
            self._journal.close()
        self.metrics.set("service.up", 0)

    async def serve_until_shutdown(self) -> None:
        """Start, then block until a SHUTDOWN frame or :meth:`request_stop`."""
        if self._asyncio_server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Ask the service to shut down (safe from the loop thread)."""
        self._shutdown.set()

    # ------------------------------------------------------------------
    # durability: journal + crash-restart recovery
    # ------------------------------------------------------------------
    def _status(
        self, status: str, detail: str = "", *, retry_after: bool = False
    ) -> bytes:
        """Encode a status payload stamped with the server epoch.

        Without a journal the epoch stays 0 and the payload is the
        plain pre-durability encoding, byte for byte.
        """
        return wire.encode_status(
            status,
            detail,
            epoch=self._epoch if self._epoch else None,
            retry_after_s=self.config.retry_after_s if retry_after else None,
        )

    def _recover_from_journal(self) -> None:
        """Replay snapshot + journal into live protocol state.

        Every record runs through the same admission/commit code path a
        live request would take, so the recovered global model, round
        state machine and commit events are bit-identical to a server
        that never crashed (pinned per round by the recovery tests).
        The journal is attached only after replay — recovery itself
        never journals — and the new epoch is the first record of the
        generation that just started.
        """
        start = time.perf_counter()
        wal = journal.WriteAheadJournal(
            self.config.journal_dir,
            fsync=self.config.journal_fsync,
            snapshot_every_bytes=self.config.journal_snapshot_bytes,
        )
        recovery = wal.recover()
        for record in recovery.records:
            self._replay_record(record)
        expected = self.config.expected_sites
        if self._round is not None:
            # The crash landed between the round's last journaled model
            # and its commit record: an uninterrupted run would have
            # auto-committed at that admission, so finish the job.
            if expected is not None and len(self._round.models) >= expected:
                self._commit_round()
        elif (
            not self._session_active
            and expected is not None
            and len(self.server.local_models) >= expected
        ):
            self._build_global_model()
        self._epoch += 1
        self._journal = wal
        wal.append(journal.RecordKind.EPOCH, journal.encode_epoch(self._epoch))
        self._recovery_wall_s = time.perf_counter() - start
        self.metrics.set("service.epoch", self._epoch)
        self.metrics.set("service.recovery_wall_seconds", self._recovery_wall_s)
        self.metrics.set("service.recovered_models", self._recovered_models)
        self.metrics.set("service.recovered_rounds", self._rounds_committed)
        self.metrics.set(
            "service.journal_truncated_bytes", recovery.truncated_bytes
        )
        self._journal_metrics()

    def _replay_record(self, record: journal.Record) -> None:
        """Apply one journal record through the live code path."""
        kind = record.kind
        if kind == journal.RecordKind.EPOCH:
            self._epoch = max(self._epoch, journal.decode_epoch(record.payload))
        elif kind == journal.RecordKind.ROUND_OPEN:
            index = journal.decode_round_marker(record.payload)
            self._session_active = True
            self._round = _StreamRound(index=index, opened_at_s=self.uptime_s)
            self.metrics.inc("service.rounds_opened")
        elif kind == journal.RecordKind.ROUND_COMMIT:
            index = journal.decode_round_marker(record.payload)
            if self._round is not None and self._round.index == index:
                self._commit_round()
            # Already-committed indices are no-ops: the gap-closing
            # auto-commit above may have run first.
        elif kind == journal.RecordKind.MODEL_ADMITTED:
            round_index, payload = journal.decode_admitted(record.payload)
            model = wire.decode_local_model(payload)
            # The deadline was enforced (and passed) before the record
            # was written; re-checking it against the *restart* clock
            # would wrongly reject every recovered model.
            verdict = self.server.admit(
                model, arrival_s=0.0, enforce_deadline=False
            )
            if verdict != "admitted":
                return
            self._recovered_models += 1
            if round_index >= 0:
                if self._round is None or self._round.index != round_index:
                    return
                self._round.models.append(self.server.local_models[-1])
                self._session_site_ids.add(model.site_id)
            else:
                self._model_dirty = True
        elif kind == journal.RecordKind.QUARANTINE:
            __, site_id, reason = journal.decode_quarantine(record.payload)
            self.server.quarantine(
                _placeholder_model(site_id), reason or "replayed quarantine"
            )

    def _journal_quarantine(
        self, round_index: int, site_id: int, reason: str
    ) -> None:
        if self._journal is None:
            return
        self._journal.append(
            journal.RecordKind.QUARANTINE,
            journal.encode_quarantine(round_index, site_id, reason),
        )
        self._journal_metrics()

    def _journal_metrics(self) -> None:
        wal = self._journal
        if wal is None:
            return
        self.metrics.set("service.journal_bytes", wal.bytes_written)
        self.metrics.set("service.journal_fsyncs", wal.fsync_count)
        self.metrics.set("service.journal_records", wal.records_written)
        self.metrics.set("service.journal_compactions", wal.compactions)

    # ------------------------------------------------------------------
    # protocol state
    # ------------------------------------------------------------------
    def _build_global_model(self) -> None:
        """(Re)build the global model from the admitted models.

        Admitted models are stably sorted by site id first so the build
        is independent of upload arrival order — the property that makes
        socket runs bit-identical to in-process runs.
        """
        self.server.local_models.sort(key=lambda model: model.site_id)
        self.server.build(allow_empty=True)
        self._model_dirty = False
        self._n_builds += 1
        self._built.set()
        self.metrics.set("service.model_builds", self._n_builds)

    def _current_model(self):
        """The up-to-date global model, rebuilding if admissions landed
        since the last build (``None`` when nothing was ever admitted).

        In a streaming session the session model is authoritative — it
        only advances at round commits, never on individual admissions.
        """
        if self._session_active:
            return self._session_model
        if self._model_dirty or not self._built.is_set():
            if not self.server.local_models:
                return None
            self._build_global_model()
        return self.server.model

    def _admit(self, frame: wire.Frame) -> tuple[str, str]:
        """Run one upload through the unchanged admission gate.

        In a streaming session the upload must land inside an open round:
        the arrival clock restarts at ROUND_OPEN (round-scoped deadline),
        admitted models are collected on the round, and the round
        auto-commits once ``expected_sites`` models are in.
        """
        if self._session_active:
            arrival_s = self.uptime_s - self._round.opened_at_s
        else:
            arrival_s = self.uptime_s
        round_index = self._round.index if self._round is not None else -1
        detail = ""
        if frame.crc_ok:
            try:
                model = wire.decode_local_model(frame.payload)
            except wire.WireError as error:
                # The payload passed its CRC but does not parse: admit a
                # placeholder so the quarantine bookkeeping names the site.
                model = _placeholder_model(frame.site_id)
                verdict = self.server.admit(model, checksum_ok=False)
                detail = f"undecodable payload: {error}"
            else:
                verdict = self.server.admit(model, arrival_s=arrival_s)
        else:
            # Bit-flipped in flight: the admission gate quarantines it —
            # same behavior, same code path, as the simulated transport.
            model = _decode_or_placeholder(frame)
            verdict = self.server.admit(
                model, arrival_s=arrival_s, checksum_ok=False
            )
        if verdict == "quarantined":
            self._journal_quarantine(round_index, model.site_id, detail)
        if verdict != "admitted":
            return verdict, detail
        # Durability before acknowledgement: the admission is journaled
        # (and fsynced) before any bookkeeping that could produce an ACK
        # or trigger a commit — a crash after this line replays the
        # model, a crash before it never acknowledged anything.
        if self._journal is not None:
            self._journal.append(
                journal.RecordKind.MODEL_ADMITTED,
                journal.encode_admitted(round_index, frame.payload),
            )
            self._journal_metrics()
        expected = self.config.expected_sites
        if self._session_active:
            self._round.models.append(self.server.local_models[-1])
            self._session_site_ids.add(model.site_id)
            if expected is not None and len(self._round.models) >= expected:
                self._commit_round()
        else:
            self._model_dirty = True
            if expected is not None and len(self.server.local_models) >= expected:
                self._build_global_model()
        return verdict, detail

    # ------------------------------------------------------------------
    # streaming sessions
    # ------------------------------------------------------------------
    def _commit_event(self, round_index: int) -> asyncio.Event:
        if round_index not in self._commit_events:
            self._commit_events[round_index] = asyncio.Event()
        return self._commit_events[round_index]

    def _open_round(self, round_index: int) -> tuple[wire.FrameKind, bytes]:
        """Handle ROUND_OPEN (idempotent for the currently open round)."""
        if self._round is not None:
            if round_index == self._round.index:
                return wire.FrameKind.ACK, self._status(
                    "round_open", f"round {round_index} already open"
                )
            return wire.FrameKind.ERROR, self._status(
                "bad_round",
                f"round {self._round.index} is open; cannot open "
                f"{round_index}",
            )
        if self._session_active and 0 <= round_index < self._rounds_committed:
            # A reconnecting worker may re-open a round that committed
            # while its ACK was lost (crash or restart window): answer
            # idempotently — its submit dedupes, its delta replays.
            return wire.FrameKind.ACK, self._status(
                "round_committed", f"round {round_index} already committed"
            )
        if round_index != self._rounds_committed:
            return wire.FrameKind.ERROR, self._status(
                "bad_round",
                f"next round is {self._rounds_committed}, got {round_index}",
            )
        if not self._session_active and self.server.local_models:
            # One-shot uploads already landed: a session cannot retrofit
            # round semantics onto them.
            return wire.FrameKind.ERROR, self._status(
                "bad_round",
                "models were admitted outside a session; restart the "
                "service to stream",
            )
        if self._journal is not None:
            self._journal.append(
                journal.RecordKind.ROUND_OPEN,
                journal.encode_round_marker(round_index),
            )
            self._journal_metrics()
        self._session_active = True
        self._round = _StreamRound(
            index=round_index, opened_at_s=self.uptime_s
        )
        self.metrics.inc("service.rounds_opened")
        return wire.FrameKind.ACK, self._status(
            "round_open", f"round {round_index} open"
        )

    def _commit_round(self) -> None:
        """Commit the open round into the session model.

        Round 0 goes through the standard sorted build — the exact code
        path a one-shot deployment uses — and seeds the repairer; every
        later round folds its models (sorted by effective site id) into
        the session model incrementally.  ``eps_global`` freezes at the
        round-0 radius, matching :class:`GlobalModelRepairer` semantics.
        """
        round_ = self._round
        assert round_ is not None
        commit_start = time.perf_counter()
        if self._journal is not None:
            # Journal the commit decision before applying it: a crash
            # mid-apply replays the commit record and re-derives the
            # exact same fold (replay runs this very method).
            self._journal.append(
                journal.RecordKind.ROUND_COMMIT,
                journal.encode_round_marker(round_.index),
            )
        models = sorted(round_.models, key=lambda model: model.site_id)
        if self._repairer is None:
            # Round 0: server.local_models holds exactly this round's
            # admitted models, so the one-shot build applies unchanged.
            self._build_global_model()
            self._session_model = self.server.model
            self._repairer = GlobalModelRepairer(
                self._session_model, metric=self.config.metric
            )
        else:
            for model in models:
                self._session_model, __ = self._repairer.add_model(model)
                self._n_repairs += 1
            self.metrics.set("service.model_repairs", self._n_repairs)
        self._rounds_committed = round_.index + 1
        self._round = None
        self._built.set()
        self._commit_event(round_.index).set()
        self.metrics.set("service.rounds_committed", self._rounds_committed)
        if self._journal is not None:
            # Commit boundaries are the journal's safe points: no round
            # is open, so the snapshot captures a consistent prefix.
            self._journal.maybe_compact()
            self._journal_metrics()
        if self.tracer.enabled:
            self.tracer.record(
                "round_commit",
                wall_start=commit_start,
                wall_end=time.perf_counter(),
                attrs={
                    "process": "server",
                    "round": round_.index,
                    "n_models": len(models),
                },
            )

    def _handle_round_commit(
        self, round_index: int
    ) -> tuple[wire.FrameKind, bytes]:
        """Handle an explicit ROUND_COMMIT (degraded/partial rounds)."""
        if self._round is not None and round_index == self._round.index:
            self._commit_round()
            return wire.FrameKind.ACK, self._status(
                "round_committed", f"round {round_index} committed"
            )
        if round_index < self._rounds_committed:
            return wire.FrameKind.ACK, self._status(
                "round_committed", f"round {round_index} already committed"
            )
        open_index = self._round.index if self._round is not None else None
        return wire.FrameKind.ERROR, self._status(
            "bad_round",
            f"cannot commit round {round_index} (open: {open_index}, "
            f"committed: {self._rounds_committed})",
        )

    async def _wait_or_shutdown(
        self, event: asyncio.Event, timeout_s: float
    ) -> str:
        """Wait for ``event``, racing graceful shutdown.

        Returns ``"ready"``, ``"shutting_down"`` or ``"timeout"`` — the
        waiter is never torn down by bare cancellation while the service
        stops; it gets the verdict and replies before its connection
        closes (counted in ``service.shutdown_notices``).
        """
        if event.is_set():
            return "ready"
        if self._shutdown.is_set():
            return "shutting_down"
        waiters = [
            asyncio.ensure_future(event.wait()),
            asyncio.ensure_future(self._shutdown.wait()),
        ]
        try:
            await asyncio.wait(
                waiters,
                timeout=max(timeout_s, 0.0),
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for waiter in waiters:
                waiter.cancel()
            await asyncio.gather(*waiters, return_exceptions=True)
        if event.is_set():
            return "ready"
        if self._shutdown.is_set():
            return "shutting_down"
        return "timeout"

    def _shutdown_notice(self) -> tuple[wire.FrameKind, bytes]:
        """The typed frame an in-flight waiter receives at shutdown."""
        self._n_shutdown_notices += 1
        self.metrics.set("service.shutdown_notices", self._n_shutdown_notices)
        return wire.FrameKind.ERROR, self._status(
            "shutting_down", "service is stopping; no model will be built"
        )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        cap = self.config.max_connections
        if cap is not None and len(self._connections) >= cap:
            self._n_connections_refused += 1
            self.metrics.set(
                "service.connections_refused", self._n_connections_refused
            )
            task = asyncio.ensure_future(self._refuse_connection(writer))
        else:
            task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _refuse_connection(self, writer: asyncio.StreamWriter) -> None:
        """Turn one connection away with a typed ``overloaded`` frame —
        never a silent drop, so the client backs off instead of hanging."""
        try:
            await self._reply(
                writer,
                wire.FrameKind.ERROR,
                self._status(
                    "overloaded",
                    f"{len(self._connections)} connections active "
                    f"(cap {self.config.max_connections})",
                    retry_after=True,
                ),
            )
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _should_shed(self, kind: wire.FrameKind) -> bool:
        """Whether one more request of ``kind`` exceeds the admission cap.

        Only *work* kinds count toward (and against) the in-flight
        budget: parked AWAIT_GLOBAL / MODEL_DELTA waiters hold no CPU
        and shedding on them would deadlock sessions whose workers park
        while their peers still need to submit.
        """
        cap = self.config.max_inflight_requests
        return (
            cap is not None and kind in _WORK_KINDS and self._inflight >= cap
        )

    async def _read_frame(self, reader: asyncio.StreamReader) -> wire.Frame | None:
        """Read one frame under the per-connection deadline.

        The deadline is a single budget for the *whole* frame: the
        payload read only gets whatever the header read left over, so a
        client dribbling bytes cannot hold the connection longer than
        ``idle_timeout_s`` per frame.

        Returns ``None`` on clean EOF.  Raises :class:`wire.WireError`
        on protocol violations and :class:`asyncio.TimeoutError` when
        the frame deadline passes.
        """
        loop = asyncio.get_event_loop()
        deadline = loop.time() + self.config.idle_timeout_s
        try:
            header = await asyncio.wait_for(
                reader.readexactly(wire.HEADER_SIZE), self.config.idle_timeout_s
            )
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None  # clean EOF between frames
            raise wire.FrameTruncated(
                f"connection closed mid-header ({len(error.partial)} bytes)"
            ) from error
        # Validate the header (magic/version/kind/length) before reading
        # the payload; CRC verdicts are delegated to the handlers so a
        # corrupt upload can be quarantined instead of dropped.
        try:
            frame, __ = wire.decode_frame(
                header,
                max_payload=self.config.max_frame_bytes,
                verify_crc=False,
            )
            return frame  # zero-payload frame: already complete
        except wire.FrameTruncated:
            pass  # header valid, payload still on the wire
        declared = wire.declared_payload_len(header)
        try:
            payload = await asyncio.wait_for(
                reader.readexactly(declared), max(deadline - loop.time(), 0.0)
            )
        except asyncio.IncompleteReadError as error:
            raise wire.FrameTruncated(
                f"connection closed mid-payload "
                f"({len(error.partial)}/{declared} bytes)"
            ) from error
        frame, __ = wire.decode_frame(
            header + payload,
            max_payload=self.config.max_frame_bytes,
            verify_crc=False,
        )
        return frame

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc("service.connections")
        try:
            while not self._shutdown.is_set():
                try:
                    frame = await self._read_frame(reader)
                except asyncio.TimeoutError:
                    self.metrics.inc("service.connection_deadline_closes")
                    break
                except wire.WireError as error:
                    self.metrics.inc("service.frame_errors")
                    await self._reply(
                        writer,
                        wire.FrameKind.ERROR,
                        self._status("protocol_error", str(error)),
                    )
                    break
                if frame is None:
                    break
                recv_wall = time.perf_counter()
                self._frames_total += 1
                kind_label = frame.kind.name.lower()
                self.metrics.inc(f"service.frames[{kind_label}]")
                # Payload bytes only — the accounting SimulatedNetwork
                # keeps in bytes_by_kind, so both backends reconcile.
                self.metrics.inc(
                    f"service.frame_bytes_received[{kind_label}]",
                    len(frame.payload),
                )
                self.metrics.observe(
                    f"service.request_payload_bytes[{kind_label}]",
                    float(len(frame.payload)),
                )
                if self._should_shed(frame.kind):
                    # Bounded admission: shed with a typed reply and a
                    # retry hint — the connection stays open, nothing
                    # queues unboundedly, nothing hangs.
                    self._n_load_shed += 1
                    self.metrics.inc(f"service.load_shed[{kind_label}]")
                    self.metrics.set(
                        "service.overloaded_replies", self._n_load_shed
                    )
                    await self._reply(
                        writer,
                        wire.FrameKind.ERROR,
                        self._status(
                            "overloaded",
                            f"{self._inflight} requests in flight "
                            f"(cap {self.config.max_inflight_requests})",
                            retry_after=True,
                        ),
                    )
                    continue
                # Mark this connection busy while a request is in flight:
                # stop() waits for busy connections (grace-bounded) so a
                # released waiter can flush its shutting_down frame
                # instead of being torn down mid-write.
                task = asyncio.current_task()
                assert task is not None
                work = frame.kind in _WORK_KINDS
                if work:
                    self._inflight += 1
                self._busy.add(task)
                try:
                    kind, payload = await self._dispatch(frame, recv_wall)
                    await self._reply(writer, kind, payload)
                finally:
                    self._busy.discard(task)
                    if work:
                        self._inflight -= 1
                if frame.kind == wire.FrameKind.SHUTDOWN:
                    self.request_stop()
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _reply(
        self, writer: asyncio.StreamWriter, kind: wire.FrameKind, payload: bytes
    ) -> None:
        # Count before writing: a client that has read the reply must be
        # able to observe the counter (payload bytes, the accounting
        # SimulatedNetwork keeps in bytes_by_kind).
        self.metrics.inc(
            f"service.frame_bytes_sent[{kind.name.lower()}]", len(payload)
        )
        writer.write(wire.encode_frame(kind, payload, site_id=wire.SERVER_ID))
        await writer.drain()

    async def _dispatch(
        self, frame: wire.Frame, recv_wall: float
    ) -> tuple[wire.FrameKind, bytes]:
        """Answer one request frame; always returns a response frame.

        ``recv_wall`` is the ``perf_counter`` read taken right after the
        frame was read off the wire — it anchors per-kind latency
        histograms and the clock-sync handshake's receive stamp.
        """
        try:
            result = await self._dispatch_inner(frame, recv_wall)
        except wire.WireError as error:
            self.metrics.inc("service.frame_errors")
            result = wire.FrameKind.ERROR, self._status(
                "bad_request", str(error)
            )
        except Exception as error:  # never let one request kill the loop
            self.metrics.inc("service.internal_errors")
            result = wire.FrameKind.ERROR, self._status(
                "internal_error", f"{type(error).__name__}: {error}"
            )
        self.metrics.observe(
            f"service.dispatch_seconds[{frame.kind.name.lower()}]",
            time.perf_counter() - recv_wall,
        )
        return result

    def _context_attrs(self, frame: wire.Frame) -> dict:
        """Trace-context span attributes from a version-2 frame (the
        caller guards on ``self.tracer.enabled``)."""
        attrs: dict = {}
        if frame.context is not None:
            attrs["trace_id"] = f"{frame.context.trace_id:032x}"
            attrs["parent_span_id"] = f"{frame.context.span_id:016x}"
        return attrs

    async def _dispatch_inner(
        self, frame: wire.Frame, recv_wall: float
    ) -> tuple[wire.FrameKind, bytes]:
        kind = frame.kind
        if kind == wire.FrameKind.LOCAL_MODEL:
            if self._session_active and frame.crc_ok:
                peeked = wire.peek_local_model_site(frame.payload)
                if peeked is not None and peeked in self._session_site_ids:
                    # Idempotent resubmission: the model was journaled
                    # and admitted before a crash/disconnect ate the
                    # ACK — re-acknowledge without re-admitting.
                    self._n_duplicate_uploads += 1
                    self.metrics.set(
                        "service.duplicate_uploads", self._n_duplicate_uploads
                    )
                    return wire.FrameKind.ACK, self._status(
                        "admitted",
                        f"duplicate upload from site {peeked} ignored",
                    )
            if self._session_active and self._round is None:
                return wire.FrameKind.ERROR, self._status(
                    "no_round_open",
                    "streaming session active; send ROUND_OPEN first",
                )
            round_index = self._round.index if self._round is not None else None
            verdict, detail = self._admit(frame)
            if self.tracer.enabled:
                attrs = {
                    "process": "server",
                    "site": int(frame.site_id),
                    "verdict": verdict,
                    "payload_bytes": len(frame.payload),
                    **self._context_attrs(frame),
                }
                if round_index is not None:
                    attrs["round"] = round_index
                self.tracer.record(
                    "serve[local_model]",
                    wall_start=recv_wall,
                    wall_end=time.perf_counter(),
                    attrs=attrs,
                )
            status_kind = (
                wire.FrameKind.ACK if verdict == "admitted" else wire.FrameKind.ERROR
            )
            return status_kind, self._status(verdict, detail)
        if kind == wire.FrameKind.AWAIT_GLOBAL:
            timeout = min(
                wire.decode_await_global(frame.payload),
                self.config.await_timeout_cap_s,
            )
            # With expected_sites configured the protocol is round-based:
            # an awaiting site must see the *round's* model, never one
            # eagerly built from whichever uploads happened to be first —
            # that is the determinism the bit-identity tests pin.  Without
            # expected_sites, wait only when nothing was ever admitted.
            round_pending = (
                self.config.expected_sites is not None
                or not self.server.local_models
            )
            if round_pending and not self._built.is_set():
                outcome = await self._wait_or_shutdown(self._built, timeout)
                if outcome == "shutting_down":
                    return self._shutdown_notice()
                if outcome == "timeout":
                    return wire.FrameKind.ERROR, self._status(
                        "no_model", f"no global model after {timeout:.3f}s"
                    )
            model = self._current_model()
            assert model is not None
            return wire.FrameKind.GLOBAL_MODEL, wire.encode_global_model(model)
        if kind == wire.FrameKind.ROUND_OPEN:
            return self._open_round(wire.decode_round_open(frame.payload))
        if kind == wire.FrameKind.ROUND_COMMIT:
            return self._handle_round_commit(
                wire.decode_round_commit(frame.payload)
            )
        if kind == wire.FrameKind.MODEL_DELTA:
            round_index, known_reps, timeout_s = wire.decode_delta_request(
                frame.payload
            )
            timeout = min(timeout_s, self.config.await_timeout_cap_s)
            outcome = await self._wait_or_shutdown(
                self._commit_event(round_index), timeout
            )
            if outcome == "shutting_down":
                return self._shutdown_notice()
            if outcome == "timeout":
                return wire.FrameKind.ERROR, self._status(
                    "no_model",
                    f"round {round_index} not committed after {timeout:.3f}s",
                )
            model = self._session_model
            if model is None:
                return wire.FrameKind.ERROR, self._status(
                    "no_model", "session has no committed model"
                )
            if not 0 <= known_reps <= len(model.representatives):
                return wire.FrameKind.ERROR, self._status(
                    "bad_delta",
                    f"known_reps {known_reps} out of range "
                    f"[0, {len(model.representatives)}]",
                )
            encode_start = time.perf_counter()
            delta = wire.delta_from_model(model, known_reps)
            payload = wire.encode_model_delta(delta)
            if self.tracer.enabled:
                # Covers the delta encode only — the wait before it is
                # the *client's* await_delta time, not server work.
                self.tracer.record(
                    "serve[model_delta]",
                    wall_start=encode_start,
                    wall_end=time.perf_counter(),
                    attrs={
                        "process": "server",
                        "site": int(frame.site_id),
                        "round": round_index,
                        "waited_s": encode_start - recv_wall,
                        "payload_bytes": len(payload),
                        **self._context_attrs(frame),
                    },
                )
            return wire.FrameKind.MODEL_DELTA, payload
        if kind == wire.FrameKind.LABEL_QUERY:
            points = wire.decode_points(frame.payload)
            model = self._current_model()
            if model is None:
                return wire.FrameKind.ERROR, self._status(
                    "no_model", "no local model admitted yet"
                )
            start = time.perf_counter()
            # Pure-coverage relabel (no local clustering to inherit from)
            # on a model snapshot, off the loop thread.
            labels, __stats = await asyncio.get_event_loop().run_in_executor(
                None,
                partial(
                    relabel_site,
                    points,
                    np.full(points.shape[0], NOISE, dtype=np.intp),
                    model,
                    site_id=None,
                    metric=self.config.metric,
                    kernel=self.config.relabel_kernel,
                ),
            )
            self.metrics.observe(
                "service.label_query_seconds", time.perf_counter() - start
            )
            self.metrics.inc("service.labels_served", int(labels.size))
            return wire.FrameKind.LABEL_REPLY, wire.encode_labels(labels)
        if kind == wire.FrameKind.TRACE_UPLOAD:
            document = wire.decode_json(frame.payload)
            if document.get("probe"):
                # Clock-sync handshake: echo the server's receive/send
                # perf_counter stamps so the client can estimate the
                # offset NTP-style.
                return wire.FrameKind.TRACE_REPLY, wire.encode_json(
                    {
                        "server_recv_wall": recv_wall,
                        "server_send_wall": time.perf_counter(),
                    }
                )
            required = ("process", "wall_origin", "clock_offset_s", "spans")
            missing = [key for key in required if key not in document]
            if missing:
                return wire.FrameKind.ERROR, self._status(
                    "bad_trace", f"trace upload missing keys {missing}"
                )
            self._remote_traces.append(document)
            self.metrics.inc("service.trace_uploads")
            return wire.FrameKind.ACK, self._status(
                "trace_recorded",
                f"{len(document['spans'])} root spans from "
                f"{document['process']}",
            )
        if kind == wire.FrameKind.HEALTH:
            return wire.FrameKind.HEALTH_REPLY, wire.encode_json(self.health())
        if kind == wire.FrameKind.METRICS:
            text = render_registry(self.metrics.to_dict())
            return wire.FrameKind.METRICS_REPLY, text.encode("utf-8")
        if kind == wire.FrameKind.SHUTDOWN:
            return wire.FrameKind.ACK, self._status("shutting_down")
        return wire.FrameKind.ERROR, self._status(
            "unexpected_frame", f"cannot serve {kind.name} requests"
        )

    def health(self) -> dict:
        """The service's health document (HEALTH frames serve this)."""
        built = self._built.is_set() and not self._model_dirty
        if self._session_active:
            # The session model is authoritative; the hosted server's own
            # model slot is invalidated by every later-round admission.
            n_representatives = (
                len(self._session_model.representatives)
                if self._session_model is not None
                else 0
            )
        else:
            n_representatives = len(self.server.model) if built else 0
        return {
            "status": "serving" if not self._shutdown.is_set() else "stopping",
            "uptime_s": round(self.uptime_s, 6),
            "sites_admitted": len(self.server.local_models),
            "sites_quarantined": len(self.server.quarantined_models),
            "sites_rejected": len(self.server.rejected_models),
            "expected_sites": self.config.expected_sites,
            "quorum_met": self.server.quorum_met,
            "model_built": built,
            "model_builds": self._n_builds,
            "n_representatives": n_representatives,
            "connections_active": len(self._connections),
            "frames_total": self._frames_total,
            "protocol_version": wire.PROTOCOL_VERSION,
            "session_active": self._session_active,
            "rounds_committed": self._rounds_committed,
            "round_open": (
                self._round.index if self._round is not None else None
            ),
            "shutdown_notices": self._n_shutdown_notices,
            "trace_uploads": len(self._remote_traces),
            "epoch": self._epoch,
            "journal_enabled": self._journal is not None,
            "recovered_models": self._recovered_models,
            "duplicate_uploads": self._n_duplicate_uploads,
            "load_shed": self._n_load_shed,
            "connections_refused": self._n_connections_refused,
        }

    # ------------------------------------------------------------------
    # distributed-trace merge
    # ------------------------------------------------------------------
    def merged_trace_document(self) -> dict:
        """One trace document covering every process of the session.

        The server's own spans form the base document; each
        ``TRACE_UPLOAD`` forest is shifted onto the server's timeline
        (remote origin + estimated clock offset − server origin), its
        roots stamped with ``process``/``site`` attributes so the
        Chrome export gives every remote process its own pid lane, and
        the top-level ``processes`` map records the per-connection
        clock-offset estimates.
        """
        doc = trace_document(self.tracer, self.metrics)
        processes: dict[str, dict] = {
            "server": {
                "site": None,
                "clock_offset_s": 0.0,
                "rtt_s": 0.0,
                "n_spans": len(self.tracer.roots),
            }
        }
        for upload in self._remote_traces:
            delta = (
                float(upload["wall_origin"])
                + float(upload["clock_offset_s"])
                - self.tracer.wall_origin
            )
            process = str(upload["process"])
            site = upload.get("site")
            for root in upload["spans"]:
                shifted = shift_span_times(root, delta)
                attrs = dict(shifted.get("attrs", {}))
                attrs.setdefault("process", process)
                if site is not None:
                    attrs.setdefault("site", int(site))
                shifted["attrs"] = attrs
                doc["spans"].append(shifted)
            entry = processes.setdefault(
                process,
                {
                    "site": int(site) if site is not None else None,
                    "clock_offset_s": float(upload["clock_offset_s"]),
                    "rtt_s": float(upload.get("rtt_s", 0.0)),
                    "n_spans": 0,
                },
            )
            entry["n_spans"] += len(upload["spans"])
        doc["processes"] = processes
        return doc

    # ------------------------------------------------------------------
    # HTTP metrics endpoint
    # ------------------------------------------------------------------
    async def _on_http_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One-shot plaintext HTTP: GET /metrics serves OpenMetrics."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), self.config.idle_timeout_s
            )
            # Drain headers until the blank line; ignore their content.
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), self.config.idle_timeout_s
                )
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            if parts and parts[0] == "GET" and path.split("?")[0] in (
                "/metrics",
                "/metrics/",
            ):
                self.metrics.inc("service.metrics_scrapes")
                body = render_registry(self.metrics.to_dict()).encode("utf-8")
                status = "200 OK"
                content_type = OPENMETRICS_CONTENT_TYPE
            else:
                body = b"only GET /metrics is served\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


def _placeholder_model(site_id: int):
    """A minimal stand-in for an upload that would not even decode, so
    the quarantine bookkeeping can still name the offending site."""
    from repro.core.models import LocalModel

    return LocalModel(
        site_id=max(int(site_id), 0),
        representatives=[],
        n_objects=0,
        scheme="unknown",
        eps_local=0.0,
        min_pts_local=0,
    )


def _decode_or_placeholder(frame: wire.Frame):
    try:
        return wire.decode_local_model(frame.payload)
    except wire.WireError:
        return _placeholder_model(frame.site_id)


@dataclass
class ServiceHandle:
    """A :class:`DBDCService` running on a dedicated thread's event loop.

    The synchronous world (tests, the bench, the CLI) starts the service
    with :meth:`start`, talks to ``host:port`` with blocking clients,
    and tears it down with :meth:`stop`.  The handle surfaces any
    exception the service thread died with.
    """

    service: DBDCService
    host: str = ""
    port: int = 0
    metrics_port: int | None = None
    _thread: threading.Thread | None = None
    _loop: asyncio.AbstractEventLoop | None = None
    _ready: threading.Event = field(default_factory=threading.Event)
    _error: BaseException | None = None
    _killed: bool = False

    @classmethod
    def start(
        cls,
        config: ServiceConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        tracer=None,
        timeout_s: float = 10.0,
    ) -> "ServiceHandle":
        """Boot a service thread and block until it is accepting."""
        handle = cls(service=DBDCService(config, metrics=metrics, tracer=tracer))
        handle._thread = threading.Thread(
            target=handle._thread_main, name="dbdc-service", daemon=True
        )
        handle._thread.start()
        if not handle._ready.wait(timeout_s):
            raise RuntimeError("DBDCService did not start in time")
        if handle._error is not None:
            raise RuntimeError("DBDCService failed to start") from handle._error
        return handle

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # surfaced via .stop()/start()
            # A hard kill() stops the loop dead, which asyncio.run
            # reports as a RuntimeError — that is the crash being
            # simulated, not a service failure to surface.
            if not self._killed:
                self._error = error
            self._ready.set()

    async def _serve(self) -> None:
        service = self.service
        await service.start()
        self._loop = asyncio.get_event_loop()
        self.host = service.config.host
        self.port = service.bound_port
        self.metrics_port = service.metrics_bound_port
        self._ready.set()
        await service._shutdown.wait()
        await service.stop()

    def merged_trace(self, timeout_s: float = 10.0) -> dict:
        """The merged distributed-trace document (thread-safe).

        While the service loop is running the merge executes *on* the
        loop (its state is loop-owned); after :meth:`stop` the thread is
        gone and the direct call is safe.
        """
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self._merged_trace_on_loop(), loop
            )
            return future.result(timeout_s)
        return self.service.merged_trace_document()

    async def _merged_trace_on_loop(self) -> dict:
        return self.service.merged_trace_document()

    def kill(self, timeout_s: float = 10.0) -> None:
        """Hard-kill the service thread — a crash, not a shutdown.

        The event loop is stopped dead between callbacks: no drain, no
        shutdown notices, no journal compaction or close.  Connections
        are severed mid-whatever and clients see raw socket errors —
        exactly what a ``kill -9`` of a service process produces, which
        is what the crash-recovery tests simulate in-process.  The
        journal directory is left as the crash left it; a new
        :meth:`start` against the same directory replays it.
        """
        self._killed = True
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(loop.stop)
            except RuntimeError:
                pass  # loop already closed: the thread is on its way out
        if self._thread is not None:
            self._thread.join(timeout_s)
            if self._thread.is_alive():
                raise RuntimeError("DBDCService thread survived kill()")
        # A stopped-dead loop leaks its listening sockets (a real kill -9
        # would have the OS reclaim the fds).  Server.close() is safe on
        # a closed loop and closes the actual socket objects — closing
        # the raw fds instead would leave the dead objects believing
        # they still own those fd numbers and re-close them (possibly
        # recycled by a restarted server) at garbage collection.
        for listener in (
            self.service._asyncio_server,
            self.service._http_server,
        ):
            if listener is not None:
                try:
                    listener.close()
                except (OSError, RuntimeError):
                    pass

    def stop(self, timeout_s: float = 10.0) -> None:
        """Request shutdown and join the service thread."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self.service.request_stop)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        if self._thread is not None:
            self._thread.join(timeout_s)
            if self._thread.is_alive():
                raise RuntimeError("DBDCService thread did not stop in time")
        if self._error is not None:
            raise RuntimeError("DBDCService thread failed") from self._error

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
