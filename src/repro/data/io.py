"""Persistence helpers: datasets, labels and models on disk.

Real deployments of a DBDC-style system need to move three artifacts
around: point sets (site data), clusterings (labels) and the transmitted
models.  This module provides simple, dependency-free formats for each:

* point sets + labels → ``.npz`` (numpy archive, exact round trip),
* labels alone → ``.csv`` (one ``index,label`` row per object —
  interoperable with anything),
* local/global models → ``.json`` (human-inspectable wire content).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.core.models import GlobalModel, LocalModel, Representative

__all__ = [
    "save_points",
    "load_points",
    "save_labels_csv",
    "load_labels_csv",
    "local_model_to_dict",
    "local_model_from_dict",
    "save_local_model",
    "load_local_model",
    "global_model_to_dict",
    "global_model_from_dict",
    "save_global_model",
    "load_global_model",
]


# ----------------------------------------------------------------------
# point sets
# ----------------------------------------------------------------------
def save_points(
    path: str | Path, points: np.ndarray, labels: np.ndarray | None = None
) -> None:
    """Save a point set (and optional labels) as a ``.npz`` archive.

    Args:
        path: target file.
        points: array of shape ``(n, d)``.
        labels: optional label array of length ``n``.

    Raises:
        ValueError: on label/point length mismatch.
    """
    points = np.asarray(points, dtype=float)
    payload = {"points": points}
    if labels is not None:
        labels = np.asarray(labels, dtype=np.intp)
        if labels.shape != (points.shape[0],):
            raise ValueError(
                f"{points.shape[0]} points but {labels.shape} labels"
            )
        payload["labels"] = labels
    np.savez_compressed(Path(path), **payload)


def load_points(path: str | Path) -> tuple[np.ndarray, np.ndarray | None]:
    """Load a point set saved by :func:`save_points`.

    Returns:
        ``(points, labels)``; ``labels`` is ``None`` when absent.
    """
    with np.load(Path(path)) as archive:
        points = archive["points"]
        labels = archive["labels"] if "labels" in archive.files else None
    return points, labels


# ----------------------------------------------------------------------
# labels
# ----------------------------------------------------------------------
def save_labels_csv(path: str | Path, labels: np.ndarray) -> None:
    """Write labels as ``index,label`` CSV rows (with a header)."""
    labels = np.asarray(labels, dtype=np.intp)
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["index", "label"])
        for i, label in enumerate(labels):
            writer.writerow([i, int(label)])


def load_labels_csv(path: str | Path) -> np.ndarray:
    """Read labels written by :func:`save_labels_csv`.

    Raises:
        ValueError: when indices are not the contiguous range ``0..n-1``.
    """
    indices, labels = [], []
    with open(Path(path), newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != ["index", "label"]:
            raise ValueError(f"unexpected CSV header: {header}")
        for row in reader:
            indices.append(int(row[0]))
            labels.append(int(row[1]))
    if indices != list(range(len(indices))):
        raise ValueError("label CSV indices must be contiguous from 0")
    return np.asarray(labels, dtype=np.intp)


# ----------------------------------------------------------------------
# models
# ----------------------------------------------------------------------
def _rep_to_dict(rep: Representative) -> dict:
    return {
        "point": [float(x) for x in rep.point],
        "eps_range": float(rep.eps_range),
        "site_id": int(rep.site_id),
        "local_cluster_id": int(rep.local_cluster_id),
    }


def _rep_from_dict(data: dict) -> Representative:
    return Representative(
        point=np.asarray(data["point"], dtype=float),
        eps_range=float(data["eps_range"]),
        site_id=int(data["site_id"]),
        local_cluster_id=int(data["local_cluster_id"]),
    )


def local_model_to_dict(model: LocalModel) -> dict:
    """JSON-serializable form of a local model (full metadata)."""
    return {
        "kind": "local_model",
        "site_id": model.site_id,
        "n_objects": model.n_objects,
        "scheme": model.scheme,
        "eps_local": model.eps_local,
        "min_pts_local": model.min_pts_local,
        "representatives": [_rep_to_dict(rep) for rep in model.representatives],
    }


def local_model_from_dict(data: dict) -> LocalModel:
    """Inverse of :func:`local_model_to_dict`.

    Raises:
        ValueError: when the payload is not a local model.
    """
    if data.get("kind") != "local_model":
        raise ValueError(f"not a local model payload: kind={data.get('kind')!r}")
    return LocalModel(
        site_id=int(data["site_id"]),
        representatives=[_rep_from_dict(r) for r in data["representatives"]],
        n_objects=int(data["n_objects"]),
        scheme=str(data["scheme"]),
        eps_local=float(data["eps_local"]),
        min_pts_local=int(data["min_pts_local"]),
    )


def save_local_model(path: str | Path, model: LocalModel) -> None:
    """Write a local model as indented JSON."""
    Path(path).write_text(json.dumps(local_model_to_dict(model), indent=2))


def load_local_model(path: str | Path) -> LocalModel:
    """Read a local model written by :func:`save_local_model`."""
    return local_model_from_dict(json.loads(Path(path).read_text()))


def global_model_to_dict(model: GlobalModel) -> dict:
    """JSON-serializable form of a global model."""
    return {
        "kind": "global_model",
        "eps_global": model.eps_global,
        "min_pts_global": model.min_pts_global,
        "global_labels": [int(label) for label in model.global_labels],
        "representatives": [_rep_to_dict(rep) for rep in model.representatives],
    }


def global_model_from_dict(data: dict) -> GlobalModel:
    """Inverse of :func:`global_model_to_dict`.

    Raises:
        ValueError: when the payload is not a global model.
    """
    if data.get("kind") != "global_model":
        raise ValueError(f"not a global model payload: kind={data.get('kind')!r}")
    return GlobalModel(
        representatives=[_rep_from_dict(r) for r in data["representatives"]],
        global_labels=np.asarray(data["global_labels"], dtype=np.intp),
        eps_global=float(data["eps_global"]),
        min_pts_global=int(data["min_pts_global"]),
    )


def save_global_model(path: str | Path, model: GlobalModel) -> None:
    """Write a global model as indented JSON."""
    Path(path).write_text(json.dumps(global_model_to_dict(model), indent=2))


def load_global_model(path: str | Path) -> GlobalModel:
    """Read a global model written by :func:`save_global_model`."""
    return global_model_from_dict(json.loads(Path(path).read_text()))
