"""Synthetic point-set generators.

The paper evaluates on three 2-D point sets (Figure 6) that were never
published; these generators produce seeded synthetic equivalents with the
same cardinalities and described characteristics, plus generic shapes
(blobs, rings, moons, uniform noise) used by the examples and tests.

All generators take an explicit seed or ``numpy.random.Generator`` so every
experiment in this repository is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_rng",
    "gaussian_blobs",
    "uniform_noise",
    "ring",
    "two_moons",
    "random_cluster_dataset",
]


def as_rng(seed: int | np.random.Generator) -> np.random.Generator:
    """Coerce a seed or generator into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def gaussian_blobs(
    counts: list[int],
    centers: np.ndarray,
    stds: list[float] | float,
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample isotropic Gaussian clusters.

    Args:
        counts: points per cluster.
        centers: cluster centers, shape ``(k, d)``.
        stds: per-cluster standard deviation (scalar broadcasts).
        seed: RNG seed or generator.

    Returns:
        ``(points, labels)`` with ground-truth labels ``0..k-1``.

    Raises:
        ValueError: on length mismatches.
    """
    rng = as_rng(seed)
    centers = np.asarray(centers, dtype=float)
    k = centers.shape[0]
    if len(counts) != k:
        raise ValueError(f"{k} centers but {len(counts)} counts")
    if np.isscalar(stds):
        stds = [float(stds)] * k
    if len(stds) != k:
        raise ValueError(f"{k} centers but {len(stds)} stds")
    parts, labels = [], []
    for cid, (count, center, std) in enumerate(zip(counts, centers, stds)):
        parts.append(rng.normal(loc=center, scale=std, size=(count, centers.shape[1])))
        labels.append(np.full(count, cid, dtype=np.intp))
    points = np.concatenate(parts) if parts else np.empty((0, centers.shape[1]))
    truth = np.concatenate(labels) if labels else np.empty(0, dtype=np.intp)
    return points, truth


def uniform_noise(
    n: int,
    bounds: tuple[float, float] | np.ndarray,
    dim: int = 2,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Uniform background noise in an axis-aligned box.

    Args:
        n: number of points.
        bounds: ``(low, high)`` applied to every axis, or a ``(d, 2)``
            per-axis array.
        dim: dimensionality when ``bounds`` is a scalar pair.
        seed: RNG seed or generator.

    Returns:
        Array of shape ``(n, dim)``.
    """
    rng = as_rng(seed)
    bounds = np.asarray(bounds, dtype=float)
    if bounds.shape == (2,):
        low = np.full(dim, bounds[0])
        high = np.full(dim, bounds[1])
    else:
        low, high = bounds[:, 0], bounds[:, 1]
        dim = low.size
    return rng.uniform(low, high, size=(n, dim))


def ring(
    n: int,
    center: tuple[float, float],
    radius: float,
    width: float,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """A 2-D annulus — the non-globular shape k-means famously fails on.

    Args:
        n: number of points.
        center: ring center.
        radius: mean radius.
        width: radial Gaussian jitter (std).
        seed: RNG seed or generator.

    Returns:
        Array of shape ``(n, 2)``.
    """
    rng = as_rng(seed)
    angles = rng.uniform(0.0, 2.0 * np.pi, size=n)
    radii = rng.normal(radius, width, size=n)
    return np.column_stack(
        [
            center[0] + radii * np.cos(angles),
            center[1] + radii * np.sin(angles),
        ]
    )


def two_moons(
    n: int,
    *,
    noise: float = 0.06,
    scale: float = 1.0,
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """The classic interleaved half-moons, another non-globular workload.

    Args:
        n: total number of points (split evenly).
        noise: isotropic Gaussian jitter (std, before scaling).
        scale: scale factor applied to the unit-moon layout.
        seed: RNG seed or generator.

    Returns:
        ``(points, labels)`` with labels 0/1 per moon.
    """
    rng = as_rng(seed)
    n_upper = n // 2
    n_lower = n - n_upper
    theta_upper = rng.uniform(0.0, np.pi, size=n_upper)
    theta_lower = rng.uniform(0.0, np.pi, size=n_lower)
    upper = np.column_stack([np.cos(theta_upper), np.sin(theta_upper)])
    lower = np.column_stack([1.0 - np.cos(theta_lower), 0.5 - np.sin(theta_lower)])
    points = np.concatenate([upper, lower])
    points += rng.normal(0.0, noise, size=points.shape)
    labels = np.concatenate(
        [np.zeros(n_upper, dtype=np.intp), np.ones(n_lower, dtype=np.intp)]
    )
    return points * scale, labels


def random_cluster_dataset(
    n: int,
    n_clusters: int,
    *,
    noise_fraction: float = 0.05,
    bounds: tuple[float, float] = (0.0, 100.0),
    std_range: tuple[float, float] = (1.5, 3.0),
    min_separation: float = 12.0,
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Randomly placed Gaussian clusters plus uniform noise.

    This is the template for the paper's data set A ("randomly generated
    data/cluster"): cluster centers are drawn uniformly but rejected until
    they keep ``min_separation`` distance, sizes are drawn from a Dirichlet
    split, and a ``noise_fraction`` share of points is uniform background.

    Args:
        n: total number of points (clusters + noise).
        n_clusters: number of Gaussian clusters.
        noise_fraction: share of uniform background noise in ``[0, 1)``.
        bounds: square domain ``(low, high)`` on both axes.
        std_range: per-cluster std drawn uniformly from this interval.
        min_separation: minimum pairwise center distance (falls back to the
            best effort after 1000 rejected draws).
        seed: RNG seed or generator.

    Returns:
        ``(points, labels)`` where noise carries label ``-1``.

    Raises:
        ValueError: for invalid fractions or counts.
    """
    if not 0 <= noise_fraction < 1:
        raise ValueError(f"noise_fraction must be in [0, 1), got {noise_fraction}")
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    rng = as_rng(seed)
    n_noise = int(round(n * noise_fraction))
    n_clustered = n - n_noise
    low, high = bounds
    margin = 0.08 * (high - low)

    centers: list[np.ndarray] = []
    attempts = 0
    while len(centers) < n_clusters:
        candidate = rng.uniform(low + margin, high - margin, size=2)
        attempts += 1
        if attempts > 1000 or all(
            np.linalg.norm(candidate - c) >= min_separation for c in centers
        ):
            centers.append(candidate)
    weights = rng.dirichlet(np.full(n_clusters, 8.0))
    counts = np.maximum(1, np.round(weights * n_clustered).astype(int))
    # Fix rounding so the counts sum exactly to n_clustered.
    while counts.sum() > n_clustered:
        counts[int(np.argmax(counts))] -= 1
    while counts.sum() < n_clustered:
        counts[int(np.argmin(counts))] += 1
    stds = rng.uniform(std_range[0], std_range[1], size=n_clusters)
    points, labels = gaussian_blobs(
        list(map(int, counts)), np.asarray(centers), list(map(float, stds)), rng
    )
    if n_noise:
        noise_points = uniform_noise(n_noise, bounds, dim=2, seed=rng)
        points = np.concatenate([points, noise_points])
        labels = np.concatenate([labels, np.full(n_noise, -1, dtype=np.intp)])
    order = rng.permutation(points.shape[0])
    return points[order], labels[order]
