"""Distance metrics used throughout the DBDC reproduction.

DBSCAN (and therefore DBDC) is defined over an arbitrary metric space.  The
paper stresses that DBSCAN "can be used for all kinds of metric data spaces
and is not confined to vector spaces" (Section 4).  This module provides the
metric abstraction the rest of the library builds on:

* scalar pairwise distances (``pairwise``),
* vectorized one-to-many kernels (``to_many``) which the spatial indexes and
  the brute-force scans rely on for speed,
* vectorized many-to-many kernels (``to_matrix``) which the batched query
  layer uses to evaluate whole query groups in one numpy call — these are
  written so that every entry is bitwise identical to the corresponding
  ``to_many`` row (same subtraction, same reduction order), which the
  batched DBSCAN path relies on for exact equivalence,
* a small registry so metrics can be selected by name from configuration
  objects and the CLI.

All kernels accept ``numpy`` arrays; points are rows of shape ``(d,)`` and
point sets are arrays of shape ``(n, d)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "Metric",
    "euclidean",
    "squared_euclidean",
    "manhattan",
    "chebyshev",
    "minkowski_metric",
    "get_metric",
    "register_metric",
    "available_metrics",
    "pairwise_distances",
]


@dataclass(frozen=True)
class Metric:
    """A distance metric bundling scalar and vectorized kernels.

    Attributes:
        name: registry key (e.g. ``"euclidean"``).
        pairwise: ``f(p, q) -> float`` distance between two points.
        to_many: ``f(p, X) -> ndarray`` distances from point ``p`` to every
            row of ``X`` (shape ``(len(X),)``).
        params: optional metric parameters (e.g. Minkowski ``p``).
        to_matrix: optional ``f(Q, X) -> ndarray`` of shape ``(len(Q),
            len(X))``; row ``i`` must be bitwise identical to
            ``to_many(Q[i], X)``.  ``None`` falls back to a row loop.
    """

    name: str
    pairwise: Callable[[np.ndarray, np.ndarray], float]
    to_many: Callable[[np.ndarray, np.ndarray], np.ndarray]
    params: dict = field(default_factory=dict)
    to_matrix: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None

    def matrix(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Full distance matrix between two point sets.

        Uses the vectorized ``to_matrix`` kernel when the metric provides
        one (chunked over ``left`` so the broadcast temporary stays small),
        otherwise one ``to_many`` sweep per row of ``left``.  Both paths
        produce bitwise-identical results.

        Args:
            left: array of shape ``(n, d)``.
            right: array of shape ``(m, d)``.

        Returns:
            Array of shape ``(n, m)`` with ``out[i, j] = d(left[i], right[j])``.
        """
        left = np.asarray(left, dtype=float)
        right = np.asarray(right, dtype=float)
        out = np.empty((left.shape[0], right.shape[0]), dtype=float)
        if self.to_matrix is not None:
            # Bound the (chunk, m, d) broadcast temporary to ~32 MB.
            per_row = max(1, right.shape[0] * max(right.shape[1] if right.ndim == 2 else 1, 1))
            chunk = max(1, 4_000_000 // per_row)
            for start in range(0, left.shape[0], chunk):
                stop = start + chunk
                out[start:stop] = self.to_matrix(left[start:stop], right)
        else:
            for i, row in enumerate(left):
                out[i] = self.to_many(row, right)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            inner = ", ".join(f"{k}={v}" for k, v in self.params.items())
            return f"Metric({self.name}, {inner})"
        return f"Metric({self.name})"


def _euclidean_pair(p: np.ndarray, q: np.ndarray) -> float:
    diff = np.asarray(p, dtype=float) - np.asarray(q, dtype=float)
    return float(np.sqrt(np.dot(diff, diff)))


def _euclidean_many(p: np.ndarray, points: np.ndarray) -> np.ndarray:
    diff = np.asarray(points, dtype=float) - np.asarray(p, dtype=float)
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def _squared_pair(p: np.ndarray, q: np.ndarray) -> float:
    diff = np.asarray(p, dtype=float) - np.asarray(q, dtype=float)
    return float(np.dot(diff, diff))


def _squared_many(p: np.ndarray, points: np.ndarray) -> np.ndarray:
    diff = np.asarray(points, dtype=float) - np.asarray(p, dtype=float)
    return np.einsum("ij,ij->i", diff, diff)


def _manhattan_pair(p: np.ndarray, q: np.ndarray) -> float:
    return float(np.abs(np.asarray(p, dtype=float) - np.asarray(q, dtype=float)).sum())


def _manhattan_many(p: np.ndarray, points: np.ndarray) -> np.ndarray:
    return np.abs(np.asarray(points, dtype=float) - np.asarray(p, dtype=float)).sum(axis=1)


def _chebyshev_pair(p: np.ndarray, q: np.ndarray) -> float:
    return float(np.abs(np.asarray(p, dtype=float) - np.asarray(q, dtype=float)).max())


def _chebyshev_many(p: np.ndarray, points: np.ndarray) -> np.ndarray:
    return np.abs(np.asarray(points, dtype=float) - np.asarray(p, dtype=float)).max(axis=1)


# Many-to-many kernels: the broadcast subtraction and the reduction over the
# trailing axis perform the exact same float operations per (query, point)
# pair as the to_many kernels, so every row is bitwise equal to a to_many
# call — a property the batched query layer's equivalence guarantee needs.

def _broadcast_diff(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    queries = np.asarray(queries, dtype=float)
    points = np.asarray(points, dtype=float)
    return points[None, :, :] - queries[:, None, :]


def _euclidean_matrix(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    diff = _broadcast_diff(queries, points)
    return np.sqrt(np.einsum("qnd,qnd->qn", diff, diff))


def _squared_matrix(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    diff = _broadcast_diff(queries, points)
    return np.einsum("qnd,qnd->qn", diff, diff)


def _manhattan_matrix(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    return np.abs(_broadcast_diff(queries, points)).sum(axis=2)


def _chebyshev_matrix(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    return np.abs(_broadcast_diff(queries, points)).max(axis=2)


euclidean = Metric("euclidean", _euclidean_pair, _euclidean_many, to_matrix=_euclidean_matrix)
squared_euclidean = Metric("squared_euclidean", _squared_pair, _squared_many, to_matrix=_squared_matrix)
manhattan = Metric("manhattan", _manhattan_pair, _manhattan_many, to_matrix=_manhattan_matrix)
chebyshev = Metric("chebyshev", _chebyshev_pair, _chebyshev_many, to_matrix=_chebyshev_matrix)


def minkowski_metric(p: float) -> Metric:
    """Build a Minkowski metric of order ``p``.

    Args:
        p: Minkowski exponent; must be >= 1 for the triangle inequality.

    Returns:
        A :class:`Metric` computing ``(sum |x_i - y_i|^p)^(1/p)``.

    Raises:
        ValueError: if ``p < 1``.
    """
    if p < 1:
        raise ValueError(f"Minkowski order must be >= 1, got {p}")

    def pair(a: np.ndarray, b: np.ndarray) -> float:
        diff = np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float))
        return float(np.power(np.power(diff, p).sum(), 1.0 / p))

    def many(a: np.ndarray, points: np.ndarray) -> np.ndarray:
        diff = np.abs(np.asarray(points, dtype=float) - np.asarray(a, dtype=float))
        return np.power(np.power(diff, p).sum(axis=1), 1.0 / p)

    def matrix(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
        diff = np.abs(_broadcast_diff(queries, points))
        return np.power(np.power(diff, p).sum(axis=2), 1.0 / p)

    return Metric(f"minkowski(p={p:g})", pair, many, params={"p": p}, to_matrix=matrix)


_REGISTRY: dict[str, Metric] = {
    "euclidean": euclidean,
    "squared_euclidean": squared_euclidean,
    "manhattan": manhattan,
    "cityblock": manhattan,
    "chebyshev": chebyshev,
    "linf": chebyshev,
}


def register_metric(metric: Metric, *aliases: str) -> None:
    """Register a metric under its name (and optional aliases)."""
    _REGISTRY[metric.name] = metric
    for alias in aliases:
        _REGISTRY[alias] = metric


def available_metrics() -> list[str]:
    """Names accepted by :func:`get_metric`, sorted."""
    return sorted(_REGISTRY)


def get_metric(metric: str | Metric) -> Metric:
    """Resolve a metric by name or pass one through.

    Args:
        metric: registry name or a :class:`Metric` instance.

    Returns:
        The resolved :class:`Metric`.

    Raises:
        KeyError: for unknown names.
    """
    if isinstance(metric, Metric):
        return metric
    try:
        return _REGISTRY[metric]
    except KeyError:
        known = ", ".join(available_metrics())
        raise KeyError(f"unknown metric {metric!r}; known: {known}") from None


def pairwise_distances(points: np.ndarray, metric: str | Metric = "euclidean") -> np.ndarray:
    """Symmetric distance matrix of a point set.

    Args:
        points: array of shape ``(n, d)``.
        metric: metric name or instance.

    Returns:
        Array of shape ``(n, n)``.
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    return resolved.matrix(points, points)
