"""The paper's evaluation data sets A, B and C (Figure 6), reconstructed.

The originals were never published; these seeded reconstructions match the
cardinalities and the described characteristics:

* **A** — 8 700 objects, "randomly generated data/cluster": a dozen
  randomly placed Gaussian clusters of varying size and spread plus a small
  uniform background.
* **B** — 4 000 objects, "very noisy data": a few clusters buried in a
  large share of uniform noise.
* **C** — 1 021 objects, "3 clusters": three well-separated clusters, one
  of them non-globular (a ring), with a sprinkle of noise.

Each data set carries recommended local DBSCAN parameters — the paper never
states its ``Eps_local``/``MinPts`` values, so these were calibrated so the
central clustering recovers the generated structure (see
``tests/test_datasets.py``).  ``cardinality`` scaling keeps the *structure*
(cluster layout, noise share) and only scales the point counts, which is
what the efficiency experiments (Figures 7-8) vary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.generators import (
    as_rng,
    gaussian_blobs,
    random_cluster_dataset,
    ring,
    uniform_noise,
)

__all__ = ["Dataset", "dataset_a", "dataset_b", "dataset_c", "load_dataset", "DATASET_NAMES"]

DATASET_NAMES = ("A", "B", "C")


@dataclass(frozen=True)
class Dataset:
    """A named evaluation data set with recommended DBSCAN parameters.

    Attributes:
        name: ``"A"``, ``"B"`` or ``"C"`` (or a scaled variant).
        points: array of shape ``(n, 2)``.
        truth: generator ground-truth labels (noise = -1); the DBDC quality
            measures do *not* use these (they compare against central
            DBSCAN), but examples and sanity tests do.
        eps_local: recommended local DBSCAN ``Eps``.
        min_pts: recommended local DBSCAN ``MinPts``.
        description: provenance note.
    """

    name: str
    points: np.ndarray
    truth: np.ndarray
    eps_local: float
    min_pts: int
    description: str

    @property
    def n(self) -> int:
        """Number of objects."""
        return self.points.shape[0]


def dataset_a(
    cardinality: int = 8700, seed: int = 42
) -> Dataset:
    """Data set A — randomly generated clusters (default 8 700 objects).

    Args:
        cardinality: total number of points; the paper's Figures 7-8 scale
            this up to 203 000 keeping the structure.
        seed: RNG seed.

    Returns:
        A :class:`Dataset` with 13 Gaussian clusters + 5 % noise.
    """
    points, truth = random_cluster_dataset(
        cardinality,
        n_clusters=13,
        noise_fraction=0.05,
        bounds=(0.0, 100.0),
        std_range=(1.5, 3.0),
        min_separation=20.0,
        seed=seed,
    )
    return Dataset(
        name="A",
        points=points,
        truth=truth,
        eps_local=2.4,
        min_pts=6,
        description=(
            f"reconstruction of test data set A: {cardinality} objects, "
            "13 randomly placed Gaussian clusters, 5% uniform noise"
        ),
    )


def dataset_b(cardinality: int = 4000, seed: int = 7) -> Dataset:
    """Data set B — very noisy data (default 4 000 objects).

    40 % of the points are uniform background noise; five clusters of
    varying density sit on top of it.

    Args:
        cardinality: total number of points.
        seed: RNG seed.

    Returns:
        A :class:`Dataset`.
    """
    rng = as_rng(seed)
    n_noise = int(round(cardinality * 0.40))
    n_clustered = cardinality - n_noise
    centers = np.asarray(
        [[20.0, 25.0], [70.0, 20.0], [50.0, 55.0], [25.0, 75.0], [80.0, 70.0]]
    )
    weights = np.asarray([0.3, 0.25, 0.2, 0.15, 0.1])
    counts = np.maximum(1, np.round(weights * n_clustered).astype(int))
    while counts.sum() > n_clustered:
        counts[int(np.argmax(counts))] -= 1
    while counts.sum() < n_clustered:
        counts[int(np.argmin(counts))] += 1
    stds = [2.0, 2.5, 1.8, 2.2, 1.5]
    points, truth = gaussian_blobs(list(map(int, counts)), centers, stds, rng)
    noise_points = uniform_noise(n_noise, (0.0, 100.0), dim=2, seed=rng)
    points = np.concatenate([points, noise_points])
    truth = np.concatenate([truth, np.full(n_noise, -1, dtype=np.intp)])
    order = rng.permutation(points.shape[0])
    return Dataset(
        name="B",
        points=points[order],
        truth=truth[order],
        eps_local=2.0,
        min_pts=8,
        description=(
            f"reconstruction of test data set B: {cardinality} objects, "
            "5 Gaussian clusters under 40% uniform noise"
        ),
    )


def dataset_c(cardinality: int = 1021, seed: int = 3) -> Dataset:
    """Data set C — 3 clusters (default 1 021 objects).

    Two compact Gaussian clusters and one ring (non-globular — the shape
    class the paper cites as k-means' weakness), plus ~2 % noise.

    Args:
        cardinality: total number of points.
        seed: RNG seed.

    Returns:
        A :class:`Dataset`.
    """
    rng = as_rng(seed)
    n_noise = max(1, int(round(cardinality * 0.02)))
    n_clustered = cardinality - n_noise
    n_ring = int(round(n_clustered * 0.4))
    n_blob1 = (n_clustered - n_ring) // 2
    n_blob2 = n_clustered - n_ring - n_blob1
    blob_points, blob_truth = gaussian_blobs(
        [n_blob1, n_blob2],
        np.asarray([[25.0, 30.0], [75.0, 35.0]]),
        [3.0, 3.5],
        rng,
    )
    ring_points = ring(n_ring, center=(50.0, 72.0), radius=14.0, width=1.2, seed=rng)
    noise_points = uniform_noise(n_noise, (0.0, 100.0), dim=2, seed=rng)
    points = np.concatenate([blob_points, ring_points, noise_points])
    truth = np.concatenate(
        [
            blob_truth,
            np.full(n_ring, 2, dtype=np.intp),
            np.full(n_noise, -1, dtype=np.intp),
        ]
    )
    order = rng.permutation(points.shape[0])
    return Dataset(
        name="C",
        points=points[order],
        truth=truth[order],
        eps_local=3.0,
        min_pts=5,
        description=(
            f"reconstruction of test data set C: {cardinality} objects, "
            "2 Gaussian clusters + 1 ring, 2% noise"
        ),
    )


_LOADERS: dict[str, Callable[..., Dataset]] = {
    "A": dataset_a,
    "B": dataset_b,
    "C": dataset_c,
}


def load_dataset(name: str, cardinality: int | None = None, seed: int | None = None) -> Dataset:
    """Load one of the paper's data sets by name.

    Args:
        name: ``"A"``, ``"B"`` or ``"C"`` (case-insensitive).
        cardinality: optional cardinality override (keeps the structure).
        seed: optional seed override.

    Returns:
        A :class:`Dataset`.

    Raises:
        KeyError: for unknown names.
    """
    loader = _LOADERS.get(name.upper())
    if loader is None:
        raise KeyError(f"unknown data set {name!r}; known: {DATASET_NAMES}")
    kwargs = {}
    if cardinality is not None:
        kwargs["cardinality"] = cardinality
    if seed is not None:
        kwargs["seed"] = seed
    return loader(**kwargs)
