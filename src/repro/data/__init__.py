"""Metrics, synthetic generators and the paper's data sets A/B/C."""

from repro.data.datasets import (
    DATASET_NAMES,
    Dataset,
    dataset_a,
    dataset_b,
    dataset_c,
    load_dataset,
)
from repro.data.distance import (
    Metric,
    available_metrics,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    minkowski_metric,
    pairwise_distances,
    register_metric,
    squared_euclidean,
)
# NOTE: repro.data.io is intentionally NOT re-exported here — it depends on
# repro.core.models, and importing it at package-init time would create an
# import cycle (core depends on data.distance).  Use ``from repro.data import
# io`` / ``from repro.data.io import save_points`` directly.
from repro.data.generators import (
    as_rng,
    gaussian_blobs,
    random_cluster_dataset,
    ring,
    two_moons,
    uniform_noise,
)

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "dataset_a",
    "dataset_b",
    "dataset_c",
    "load_dataset",
    "Metric",
    "available_metrics",
    "chebyshev",
    "euclidean",
    "get_metric",
    "manhattan",
    "minkowski_metric",
    "pairwise_distances",
    "register_metric",
    "squared_euclidean",
    "as_rng",
    "gaussian_blobs",
    "random_cluster_dataset",
    "ring",
    "two_moons",
    "uniform_noise",
]
