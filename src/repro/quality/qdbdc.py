"""The distributed clustering quality ``Q_DBDC`` (Definition 9).

``Q_DBDC`` is the mean object quality over the database:

    ``Q_DBDC = (1/n) * Σ P(x_i)``

with ``P`` one of the object quality functions of
:mod:`repro.quality.pfunctions`.  The paper reports both variants side by
side (Figures 9-11) to argue that the continuous ``P^II`` is the more
suitable criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quality.pfunctions import OverlapTables, per_object_p1, per_object_p2

__all__ = ["QualityReport", "q_dbdc_p1", "q_dbdc_p2", "evaluate_quality"]


@dataclass(frozen=True)
class QualityReport:
    """Both quality criteria for one distributed-vs-central comparison.

    Attributes:
        q_p1: ``Q_DBDC`` under the discrete ``P^I`` (in ``[0, 1]``).
        q_p2: ``Q_DBDC`` under the continuous ``P^II`` (in ``[0, 1]``).
        qp: quality parameter used by ``P^I``.
        n_objects: number of objects compared.
    """

    q_p1: float
    q_p2: float
    qp: int
    n_objects: int

    @property
    def q_p1_percent(self) -> float:
        """``P^I`` quality in percent, as the paper's tables print it."""
        return 100.0 * self.q_p1

    @property
    def q_p2_percent(self) -> float:
        """``P^II`` quality in percent, as the paper's tables print it."""
        return 100.0 * self.q_p2


def q_dbdc_p1(
    distributed: np.ndarray, central: np.ndarray, qp: int
) -> float:
    """``Q_DBDC`` under ``P^I``.

    Args:
        distributed: distributed labels.
        central: central reference labels.
        qp: quality parameter (paper default: ``MinPts``).

    Returns:
        Mean score in ``[0, 1]`` (1.0 for empty inputs by convention).
    """
    scores = per_object_p1(distributed, central, qp)
    return float(scores.mean()) if scores.size else 1.0


def q_dbdc_p2(distributed: np.ndarray, central: np.ndarray) -> float:
    """``Q_DBDC`` under ``P^II``.

    Args:
        distributed: distributed labels.
        central: central reference labels.

    Returns:
        Mean score in ``[0, 1]`` (1.0 for empty inputs by convention).
    """
    scores = per_object_p2(distributed, central)
    return float(scores.mean()) if scores.size else 1.0


def evaluate_quality(
    distributed: np.ndarray,
    central: np.ndarray,
    *,
    qp: int,
) -> QualityReport:
    """Compute both quality criteria in one pass.

    Args:
        distributed: distributed labels (aligned with ``central``).
        central: central reference labels.
        qp: quality parameter for ``P^I``.

    Returns:
        A :class:`QualityReport`.
    """
    tables = OverlapTables(distributed, central)
    p1 = per_object_p1(distributed, central, qp, tables=tables)
    p2 = per_object_p2(distributed, central, tables=tables)
    n = tables.distributed.size
    return QualityReport(
        q_p1=float(p1.mean()) if n else 1.0,
        q_p2=float(p2.mean()) if n else 1.0,
        qp=qp,
        n_objects=n,
    )
