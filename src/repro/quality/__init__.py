"""Quality measures for distributed clusterings (Section 8) and classical
external measures used as cross-checks.
"""

from repro.quality.breakdown import (
    ClusterMatch,
    QualityBreakdown,
    quality_breakdown,
)
from repro.quality.degraded import (
    DegradedQualityReport,
    evaluate_degraded_quality,
)
from repro.quality.external import (
    adjusted_rand_index,
    jaccard_index,
    normalized_mutual_information,
    purity,
    rand_index,
)
from repro.quality.pfunctions import (
    OverlapTables,
    object_quality_p1,
    object_quality_p2,
    per_object_p1,
    per_object_p2,
)
from repro.quality.qdbdc import QualityReport, evaluate_quality, q_dbdc_p1, q_dbdc_p2

__all__ = [
    "ClusterMatch",
    "QualityBreakdown",
    "quality_breakdown",
    "DegradedQualityReport",
    "evaluate_degraded_quality",
    "OverlapTables",
    "object_quality_p1",
    "object_quality_p2",
    "per_object_p1",
    "per_object_p2",
    "QualityReport",
    "evaluate_quality",
    "q_dbdc_p1",
    "q_dbdc_p2",
    "rand_index",
    "adjusted_rand_index",
    "jaccard_index",
    "normalized_mutual_information",
    "purity",
]
