"""Object quality functions ``P^I`` and ``P^II`` (Definitions 10 and 11).

Both functions score a single object ``x`` by comparing the cluster it ended
up in under the *distributed* clustering against the cluster it belongs to
under the *central* reference clustering:

* ``P^I`` (discrete): 1 when ``x`` is noise in both clusterings; 0 when it
  is noise in exactly one; for clustered/clustered, 1 iff the two clusters
  share at least ``qp`` objects (default ``qp = MinPts`` — "asking for less
  than MinPts elements in both clusters would weaken the quality criterion
  unnecessarily"), else 0.
* ``P^II`` (continuous): 1 when noise in both, 0 when noise in exactly one,
  otherwise the Jaccard coefficient ``|C_d ∩ C_c| / |C_d ∪ C_c|``.

Note on the printed paper: the case tables of Definitions 10/11 are garbled
(guards contradict their own cases).  The implementation follows the only
self-consistent reading, which matches the prose around the definitions and
the sanity requirement that comparing a clustering to itself yields 100 %.
The property tests pin this down (``tests/test_quality_properties.py``).
"""

from __future__ import annotations

import numpy as np

from repro.clustering.labels import NOISE, validate_labels

__all__ = [
    "object_quality_p1",
    "object_quality_p2",
    "per_object_p1",
    "per_object_p2",
    "OverlapTables",
]


class OverlapTables:
    """Precomputed cluster-overlap statistics for a pair of clusterings.

    Evaluating ``P`` for every object naively intersects its two clusters
    per object; this helper computes, once, for every pair of co-occurring
    cluster ids ``(d, c)``:

    * ``intersection[(d, c)]`` = ``|C_d ∩ C_c|``,
    * the cluster sizes, from which ``|C_d ∪ C_c|`` follows by
      inclusion-exclusion.

    Args:
        distributed: label array of the distributed clustering.
        central: label array of the central reference clustering.

    Raises:
        ValueError: on length mismatch.
    """

    def __init__(self, distributed: np.ndarray, central: np.ndarray) -> None:
        distributed = validate_labels(distributed)
        central = validate_labels(central)
        if distributed.shape != central.shape:
            raise ValueError(
                f"label arrays must align, got {distributed.shape} vs {central.shape}"
            )
        self.distributed = distributed
        self.central = central
        self.size_d: dict[int, int] = {}
        self.size_c: dict[int, int] = {}
        self.intersection: dict[tuple[int, int], int] = {}
        for d, c in zip(distributed, central):
            d, c = int(d), int(c)
            if d != NOISE:
                self.size_d[d] = self.size_d.get(d, 0) + 1
            if c != NOISE:
                self.size_c[c] = self.size_c.get(c, 0) + 1
            if d != NOISE and c != NOISE:
                self.intersection[(d, c)] = self.intersection.get((d, c), 0) + 1

    def jaccard(self, d: int, c: int) -> float:
        """``|C_d ∩ C_c| / |C_d ∪ C_c|`` for a pair of cluster ids."""
        inter = self.intersection.get((d, c), 0)
        union = self.size_d[d] + self.size_c[c] - inter
        return inter / union if union else 0.0


def object_quality_p1(
    in_noise_distr: bool,
    in_noise_central: bool,
    overlap: int,
    qp: int,
) -> int:
    """Scalar ``P^I`` for one object (Definition 10).

    Args:
        in_noise_distr: object is noise in the distributed clustering.
        in_noise_central: object is noise in the central clustering.
        overlap: ``|C_d ∩ C_c|`` (ignored when either side is noise).
        qp: quality parameter (the paper recommends ``MinPts``).

    Returns:
        0 or 1.
    """
    if in_noise_distr and in_noise_central:
        return 1
    if in_noise_distr or in_noise_central:
        return 0
    return 1 if overlap >= qp else 0


def object_quality_p2(
    in_noise_distr: bool,
    in_noise_central: bool,
    jaccard: float,
) -> float:
    """Scalar ``P^II`` for one object (Definition 11).

    Args:
        in_noise_distr: object is noise in the distributed clustering.
        in_noise_central: object is noise in the central clustering.
        jaccard: ``|C_d ∩ C_c| / |C_d ∪ C_c|`` (ignored when either side
            is noise).

    Returns:
        A value in ``[0, 1]``.
    """
    if in_noise_distr and in_noise_central:
        return 1.0
    if in_noise_distr or in_noise_central:
        return 0.0
    return float(jaccard)


def per_object_p1(
    distributed: np.ndarray,
    central: np.ndarray,
    qp: int,
    *,
    tables: OverlapTables | None = None,
) -> np.ndarray:
    """Vector of ``P^I(x)`` over all objects.

    Args:
        distributed: distributed labels.
        central: central reference labels.
        qp: quality parameter (paper default: the clustering's ``MinPts``).
        tables: optional precomputed :class:`OverlapTables`.

    Returns:
        Integer array of 0/1 scores.
    """
    if qp < 1:
        raise ValueError(f"qp must be >= 1, got {qp}")
    if tables is None:
        tables = OverlapTables(distributed, central)
    out = np.empty(tables.distributed.size, dtype=np.intp)
    for i, (d, c) in enumerate(zip(tables.distributed, tables.central)):
        d, c = int(d), int(c)
        overlap = tables.intersection.get((d, c), 0) if d != NOISE and c != NOISE else 0
        out[i] = object_quality_p1(d == NOISE, c == NOISE, overlap, qp)
    return out


def per_object_p2(
    distributed: np.ndarray,
    central: np.ndarray,
    *,
    tables: OverlapTables | None = None,
) -> np.ndarray:
    """Vector of ``P^II(x)`` over all objects.

    Args:
        distributed: distributed labels.
        central: central reference labels.
        tables: optional precomputed :class:`OverlapTables`.

    Returns:
        Float array of scores in ``[0, 1]``.
    """
    if tables is None:
        tables = OverlapTables(distributed, central)
    out = np.empty(tables.distributed.size, dtype=float)
    jaccard_cache: dict[tuple[int, int], float] = {}
    for i, (d, c) in enumerate(zip(tables.distributed, tables.central)):
        d, c = int(d), int(c)
        if d == NOISE or c == NOISE:
            out[i] = object_quality_p2(d == NOISE, c == NOISE, 0.0)
            continue
        key = (d, c)
        if key not in jaccard_cache:
            jaccard_cache[key] = tables.jaccard(d, c)
        out[i] = jaccard_cache[key]
    return out
