"""Standard external clustering-comparison measures, built from scratch.

The paper argues that no established quality measure existed for
*distributed* clusterings and introduces ``P^I``/``P^II``.  To put those on
solid ground, this module provides the classical external measures as
cross-checks (used by the ablation benchmarks and the test suite):

* Rand index and adjusted Rand index (ARI),
* Jaccard index over co-clustered pairs,
* normalized mutual information (NMI),
* purity.

Noise handling follows the common convention for density-based results:
each noise object is treated as its own singleton cluster, so two
clusterings that agree on noise agree on those singletons.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clustering.labels import NOISE, validate_labels

__all__ = [
    "rand_index",
    "adjusted_rand_index",
    "jaccard_index",
    "normalized_mutual_information",
    "purity",
]


def _noise_as_singletons(labels: np.ndarray) -> np.ndarray:
    """Replace every noise label with a fresh singleton cluster id."""
    labels = validate_labels(labels).copy()
    next_id = int(labels.max()) + 1 if (labels >= 0).any() else 0
    for i, label in enumerate(labels):
        if label == NOISE:
            labels[i] = next_id
            next_id += 1
    return labels


def _contingency(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Dense contingency matrix of two noise-free label arrays."""
    left_ids, left_inv = np.unique(left, return_inverse=True)
    right_ids, right_inv = np.unique(right, return_inverse=True)
    table = np.zeros((left_ids.size, right_ids.size), dtype=np.int64)
    np.add.at(table, (left_inv, right_inv), 1)
    return table


def _pair_counts(left: np.ndarray, right: np.ndarray) -> tuple[int, int, int, int]:
    """(a, b, c, d) pair counts: together/together, together/apart, ..."""
    table = _contingency(left, right)
    n = int(table.sum())

    def comb2(values: np.ndarray) -> int:
        values = values.astype(np.int64)
        return int((values * (values - 1) // 2).sum())

    together_both = comb2(table.ravel())
    together_left = comb2(table.sum(axis=1))
    together_right = comb2(table.sum(axis=0))
    total_pairs = n * (n - 1) // 2
    a = together_both
    b = together_left - together_both
    c = together_right - together_both
    d = total_pairs - a - b - c
    return a, b, c, d


def _prepare(left: np.ndarray, right: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    left = validate_labels(left)
    right = validate_labels(right)
    if left.shape != right.shape:
        raise ValueError(f"label arrays must align, got {left.shape} vs {right.shape}")
    return _noise_as_singletons(left), _noise_as_singletons(right)


def rand_index(left: np.ndarray, right: np.ndarray) -> float:
    """Rand index in ``[0, 1]`` (1.0 for identical partitions)."""
    left, right = _prepare(left, right)
    if left.size < 2:
        return 1.0
    a, b, c, d = _pair_counts(left, right)
    return (a + d) / (a + b + c + d)


def adjusted_rand_index(left: np.ndarray, right: np.ndarray) -> float:
    """Adjusted Rand index (chance-corrected; 1.0 for identical partitions)."""
    left, right = _prepare(left, right)
    if left.size < 2:
        return 1.0
    a, b, c, d = _pair_counts(left, right)
    total = a + b + c + d
    expected = (a + b) * (a + c) / total if total else 0.0
    maximum = ((a + b) + (a + c)) / 2.0
    if maximum == expected:
        return 1.0
    return (a - expected) / (maximum - expected)


def jaccard_index(left: np.ndarray, right: np.ndarray) -> float:
    """Jaccard index over co-clustered pairs (1.0 for identical partitions)."""
    left, right = _prepare(left, right)
    if left.size < 2:
        return 1.0
    a, b, c, __ = _pair_counts(left, right)
    denominator = a + b + c
    return a / denominator if denominator else 1.0


def normalized_mutual_information(left: np.ndarray, right: np.ndarray) -> float:
    """NMI with arithmetic-mean normalization (1.0 for identical partitions)."""
    left, right = _prepare(left, right)
    n = left.size
    if n == 0:
        return 1.0
    table = _contingency(left, right).astype(float)
    joint = table / n
    p_left = joint.sum(axis=1)
    p_right = joint.sum(axis=0)
    mutual = 0.0
    for i in range(joint.shape[0]):
        for j in range(joint.shape[1]):
            p = joint[i, j]
            if p > 0:
                mutual += p * math.log(p / (p_left[i] * p_right[j]))
    h_left = -sum(p * math.log(p) for p in p_left if p > 0)
    h_right = -sum(p * math.log(p) for p in p_right if p > 0)
    normalizer = (h_left + h_right) / 2.0
    if normalizer == 0.0:
        return 1.0
    # Clamp tiny negative rounding residue (mutual information is >= 0).
    return min(1.0, max(0.0, mutual / normalizer))


def purity(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Purity of ``predicted`` against ``reference`` (asymmetric, in [0,1])."""
    predicted, reference = _prepare(predicted, reference)
    if predicted.size == 0:
        return 1.0
    table = _contingency(predicted, reference)
    return float(table.max(axis=1).sum()) / predicted.size
