"""Quality scoring for degraded (partial-participation) DBDC rounds.

A degraded run has two interesting qualities, mirroring the site-failure
ablation: how good the clustering is *overall* (failed sites' objects kept
their local labels or stayed noise, and are scored as-is against the
central reference) and how good it is *on the surviving sites alone* —
the paper's architecture argument predicts that lost sites should cost
only their own objects, never the others' clustering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.quality.qdbdc import QualityReport, evaluate_quality

__all__ = ["DegradedQualityReport", "evaluate_degraded_quality"]


@dataclass(frozen=True)
class DegradedQualityReport:
    """Overall and surviving-sites quality of one degraded run.

    Attributes:
        overall: both criteria over *all* objects (failed sites' objects
            carry their degraded labels).
        surviving: both criteria over the surviving sites' objects only
            (``None`` when every site failed).
        n_sites: total sites in the round.
        n_failed_sites: sites that missed some part of the round.
    """

    overall: QualityReport
    surviving: QualityReport | None
    n_sites: int
    n_failed_sites: int

    @property
    def failed_fraction(self) -> float:
        """Fraction of sites that failed."""
        if self.n_sites == 0:
            return 0.0
        return self.n_failed_sites / self.n_sites


def evaluate_degraded_quality(
    distributed: np.ndarray,
    central: np.ndarray,
    *,
    assignment: np.ndarray,
    failed_sites: Iterable[int],
    n_sites: int,
    qp: int,
) -> DegradedQualityReport:
    """Score a degraded run overall and on its surviving sites.

    Args:
        distributed: distributed labels in original object order.
        central: central reference labels (same order).
        assignment: per object, the site it lived on.
        failed_sites: sites that missed the round.
        n_sites: total sites.
        qp: quality parameter for ``P^I``.

    Returns:
        A :class:`DegradedQualityReport`.
    """
    distributed = np.asarray(distributed)
    central = np.asarray(central)
    assignment = np.asarray(assignment, dtype=np.intp)
    failed = set(int(s) for s in failed_sites)
    overall = evaluate_quality(distributed, central, qp=qp)
    surviving_mask = ~np.isin(assignment, sorted(failed))
    surviving = None
    if surviving_mask.any():
        surviving = evaluate_quality(
            distributed[surviving_mask], central[surviving_mask], qp=qp
        )
    return DegradedQualityReport(
        overall=overall,
        surviving=surviving,
        n_sites=n_sites,
        n_failed_sites=len(failed),
    )
