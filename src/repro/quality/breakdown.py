"""Per-cluster quality breakdown: *where* a distributed clustering loses.

``Q_DBDC`` is a single number; when it drops, the first question is which
clusters are responsible — a split, a merge, noise promotion?  This module
matches distributed clusters to central clusters by best Jaccard overlap
and reports the loss per cluster, which is exactly the diagnostic loop the
calibration of this reproduction went through.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE
from repro.quality.pfunctions import OverlapTables

__all__ = ["ClusterMatch", "QualityBreakdown", "quality_breakdown"]


@dataclass(frozen=True)
class ClusterMatch:
    """One distributed cluster matched to its best central counterpart.

    Attributes:
        distributed_id: the distributed cluster.
        central_id: best-overlap central cluster (``-1`` when the cluster
            consists solely of centrally-noise objects).
        jaccard: overlap quality ``|∩| / |∪|`` of the matched pair.
        size_distributed: members of the distributed cluster.
        size_central: members of the matched central cluster (0 for -1).
        intersection: members shared by the pair.
    """

    distributed_id: int
    central_id: int
    jaccard: float
    size_distributed: int
    size_central: int
    intersection: int

    @property
    def is_split_or_merge(self) -> bool:
        """Heuristic flag: a poor match signals a split/merge artifact.

        A clean two-way split/merge scores exactly 0.5, hence the
        inclusive threshold.
        """
        return self.jaccard <= 0.5


@dataclass
class QualityBreakdown:
    """Full decomposition of a distributed-vs-central comparison.

    Attributes:
        matches: per distributed cluster, its best central match (sorted
            by ascending Jaccard — worst offenders first).
        unmatched_central: central cluster ids that are no distributed
            cluster's best match (typically split victims).
        n_noise_agree: objects that are noise in both clusterings.
        n_noise_promoted: central-noise objects inside distributed
            clusters (over-eager ε-ranges).
        n_noise_lost: centrally-clustered objects that the distributed
            run left as noise (under-coverage).
    """

    matches: list[ClusterMatch]
    unmatched_central: list[int]
    n_noise_agree: int
    n_noise_promoted: int
    n_noise_lost: int

    def worst(self, k: int = 5) -> list[ClusterMatch]:
        """The ``k`` lowest-Jaccard matches."""
        return self.matches[:k]

    def to_text(self) -> str:
        """Human-readable report."""
        lines = ["per-cluster quality breakdown", "=" * 30]
        for match in self.matches:
            flag = "  <-- split/merge" if match.is_split_or_merge else ""
            lines.append(
                f"distributed {match.distributed_id:>4d} -> central "
                f"{match.central_id:>4d}: J={match.jaccard:.3f} "
                f"(|d|={match.size_distributed}, |c|={match.size_central}, "
                f"∩={match.intersection}){flag}"
            )
        if self.unmatched_central:
            lines.append(f"central clusters without a counterpart: {self.unmatched_central}")
        lines.append(
            f"noise: {self.n_noise_agree} agree, "
            f"{self.n_noise_promoted} promoted (central noise in a "
            f"distributed cluster), {self.n_noise_lost} lost (centrally "
            f"clustered but distributed noise)"
        )
        return "\n".join(lines)


def quality_breakdown(
    distributed: np.ndarray, central: np.ndarray
) -> QualityBreakdown:
    """Decompose the quality comparison cluster by cluster.

    Args:
        distributed: distributed labels (noise = -1).
        central: central reference labels, same length.

    Returns:
        A :class:`QualityBreakdown` (matches sorted worst-first).
    """
    tables = OverlapTables(distributed, central)
    matches: list[ClusterMatch] = []
    matched_central: set[int] = set()
    for d_id, d_size in sorted(tables.size_d.items()):
        best_c, best_j, best_inter = -1, 0.0, 0
        for (d, c), inter in tables.intersection.items():
            if d != d_id:
                continue
            j = tables.jaccard(d, c)
            if j > best_j:
                best_c, best_j, best_inter = c, j, inter
        matches.append(
            ClusterMatch(
                distributed_id=d_id,
                central_id=best_c,
                jaccard=best_j,
                size_distributed=d_size,
                size_central=tables.size_c.get(best_c, 0),
                intersection=best_inter,
            )
        )
        if best_c != -1:
            matched_central.add(best_c)
    matches.sort(key=lambda m: m.jaccard)
    unmatched = sorted(set(tables.size_c) - matched_central)
    dist = tables.distributed
    cent = tables.central
    return QualityBreakdown(
        matches=matches,
        unmatched_central=unmatched,
        n_noise_agree=int(np.count_nonzero((dist == NOISE) & (cent == NOISE))),
        n_noise_promoted=int(np.count_nonzero((dist != NOISE) & (cent == NOISE))),
        n_noise_lost=int(np.count_nonzero((dist == NOISE) & (cent != NOISE))),
    )
