"""End-to-end orchestration of the DBDC protocol over the simulated network.

:class:`DistributedRunner` wires :class:`~repro.distributed.site.ClientSite`
objects, a :class:`~repro.distributed.server.CentralServer` and a
:class:`~repro.distributed.network.SimulatedNetwork` into the four protocol
steps of the paper's Figure 2, with the same runtime accounting the paper
uses (sites run conceptually in parallel: overall = max local + global).

This is the "whole system" view; :func:`repro.core.dbdc.run_dbdc` offers the
same pipeline as a plain function when network accounting is not needed.

The local phase (steps 1+2) and the relabel fan-out (step 4) are
"conceptually parallel" in the paper — every site works independently.  The
``parallelism`` config knob makes that real: with ``parallelism > 1`` the
runner fans the per-site compute out over a ``concurrent.futures`` executor
(threads by default, processes via ``parallel_backend="process"``) and then
applies the results in deterministic site order, so the report is identical
to a sequential run except for wall-clock timing fields.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.core.global_model import GlobalModelRepairer
from repro.core.models import GlobalModel, LocalModel
from repro.core.relabel import RELABEL_KERNELS, relabel_site
from repro.core.shm import ShmArrayPool, ShmArrayRef
from repro.data.distance import Metric
from repro.distributed.network import SERVER, NetworkStats, SimulatedNetwork
from repro.distributed.partition import partition, split
from repro.distributed.server import CentralServer
from repro.distributed.site import ClientSite
from repro.faults.plan import FaultPlan
from repro.faults.transport import (
    BreakerPolicy,
    ResilientTransport,
    TransportPolicy,
    TransportStats,
)
from repro.obs import MetricsRegistry, Span, Tracer, trace_document

__all__ = [
    "DistributedRunConfig",
    "DistributedRunReport",
    "DistributedRunner",
    "RecoveryPolicy",
    "RecoveryRoundStats",
    "RoundPolicy",
]

#: Failure reasons a recovery round heals by re-uploading the local model.
_UPLOAD_REASONS = frozenset(
    {"crash_before_local", "link_failed", "deadline_missed", "quarantined"}
)
#: Failure reasons where the model is already admitted and only the
#: broadcast + relabel leg is missing.
_BROADCAST_REASONS = frozenset(
    {"crash_after_send", "broadcast_lost", "broadcast_corrupt"}
)

_T = TypeVar("_T")
_R = TypeVar("_R")


def _local_clustering_task(site: ClientSite):
    """Worker task: a site's pure local-clustering compute (picklable)."""
    return site.compute_local_clustering()


def _relabel_task(item: tuple[ClientSite, GlobalModel]):
    """Worker task: a site's pure relabel compute (picklable)."""
    site, model = item
    return site.compute_relabel(model)


def _observed_local_task(site: ClientSite):
    """Observed worker task: local clustering under a worker-local tracer
    and metrics registry, whose exports ride back with the result so the
    driver can graft/merge them (works for thread *and* process pools)."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    with tracer.span(
        f"site[{site.site_id}].local",
        attrs={"site": site.site_id, "n_objects": int(site.points.shape[0])},
    ):
        outcome, wall_s, cpu_s = site.compute_local_clustering(
            tracer=tracer, metrics=metrics
        )
    return outcome, wall_s, cpu_s, tracer.export_spans(origin=0.0), metrics.to_dict()


def _observed_relabel_task(item: tuple[ClientSite, GlobalModel]):
    """Observed worker task: relabel with a worker-local tracer."""
    site, model = item
    tracer = Tracer()
    with tracer.span(
        f"site[{site.site_id}].relabel", attrs={"site": site.site_id}
    ):
        labels, stats, wall_s, cpu_s = site.compute_relabel(model)
    return labels, stats, wall_s, cpu_s, tracer.export_spans(origin=0.0)


def _shift_span_dict(span: dict, delta: float) -> None:
    """Shift an exported span tree's wall timestamps by ``delta``."""
    span["wall_start"] += delta
    span["wall_end"] += delta
    for child in span.get("children", []):
        _shift_span_dict(child, delta)


def _graft_worker_spans(parent: Span, exported: list[dict]) -> None:
    """Attach worker-exported span trees under ``parent``.

    Thread workers share the driver's ``perf_counter`` clock, so their
    timestamps land inside the parent window as-is.  Process workers have
    their own clock epoch; a span starting outside the parent window is
    re-anchored at the window start (durations are preserved).
    """
    for data in exported:
        if not parent.wall_start <= data["wall_start"] <= parent.wall_end:
            _shift_span_dict(data, parent.wall_start - data["wall_start"])
        parent.children.append(Span.from_dict(data))


# ----------------------------------------------------------------------
# Shared-memory fan-out (process backend).
#
# The plain process-pool path pickles every site's full point array into
# the worker task — and the worker pickles it *back* inside the result's
# neighbor index.  With shared memory enabled the driver copies each
# site's points into an OS shared-memory block once (ShmArrayPool) and
# ships only a tiny ShmArrayRef per task; the worker attaches zero-copy
# and strips the neighbor index from the returned outcome so the result
# carries labels + model, never the points.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ShmLocalSpec:
    """Picklable task spec of one site's shared-memory local phase.

    Exactly one of ``points_ref`` / ``points`` is set (zero-size arrays
    cannot live in shared memory and travel inline instead).
    """

    site_id: int
    points_ref: ShmArrayRef | None
    points: np.ndarray | None
    eps_local: float
    min_pts_local: int
    scheme: str
    metric: str | Metric
    index_kind: str
    relabel_kernel: str
    observed: bool


@dataclass(frozen=True)
class _ShmRelabelSpec:
    """Picklable task spec of one site's shared-memory relabel pass."""

    site_id: int
    points_ref: ShmArrayRef | None
    points: np.ndarray | None
    labels_ref: ShmArrayRef | None
    labels: np.ndarray | None
    metric: str | Metric
    relabel_kernel: str
    model: GlobalModel
    observed: bool


def _shm_local_task(spec: _ShmLocalSpec):
    """Worker task: local clustering against shared-memory points."""
    if spec.points_ref is not None:
        points, segment = spec.points_ref.open()
    else:
        points, segment = spec.points, None
    try:
        site = ClientSite(
            spec.site_id,
            points,
            eps_local=spec.eps_local,
            min_pts_local=spec.min_pts_local,
            scheme=spec.scheme,
            metric=spec.metric,
            index_kind=spec.index_kind,
            relabel_kernel=spec.relabel_kernel,
        )
        task = _observed_local_task if spec.observed else _local_clustering_task
        result = task(site)
        # The clustering's neighbor index references the (shared) point
        # array; stripping it keeps the pickled result at labels + model
        # size instead of shipping the points back to the driver.
        result[0].clustering.index = None
        return result
    finally:
        if segment is not None:
            segment.close()


def _shm_relabel_task(spec: _ShmRelabelSpec):
    """Worker task: relabel against shared-memory points and labels."""
    segments = []
    try:
        if spec.points_ref is not None:
            points, segment = spec.points_ref.open()
            segments.append(segment)
        else:
            points = spec.points
        if spec.labels_ref is not None:
            labels, segment = spec.labels_ref.open()
            segments.append(segment)
        else:
            labels = spec.labels
        if not spec.observed:
            return _timed_relabel(points, labels, spec)
        tracer = Tracer()
        with tracer.span(
            f"site[{spec.site_id}].relabel", attrs={"site": spec.site_id}
        ):
            global_labels, stats, wall_s, cpu_s = _timed_relabel(
                points, labels, spec
            )
        return global_labels, stats, wall_s, cpu_s, tracer.export_spans(origin=0.0)
    finally:
        for segment in segments:
            segment.close()


def _timed_relabel(points, labels, spec: _ShmRelabelSpec):
    """One relabel pass with the wall/CPU timing of ``compute_relabel``."""
    wall_start = time.perf_counter()
    cpu_start = time.thread_time()
    global_labels, stats = relabel_site(
        points,
        labels,
        spec.model,
        site_id=spec.site_id,
        metric=spec.metric,
        kernel=spec.relabel_kernel,
    )
    return (
        global_labels,
        stats,
        time.perf_counter() - wall_start,
        time.thread_time() - cpu_start,
    )


@dataclass(frozen=True)
class DistributedRunConfig:
    """Configuration of a distributed run.

    Attributes:
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme.
        eps_global: server merge radius (``None`` → paper default).
        metric: distance metric.
        index_kind: neighbor index kind.
        partition_strategy: how the data is spread over sites.
        seed: partitioning seed.
        parallelism: maximum number of sites whose local phase / relabel
            pass runs concurrently (1 = strictly sequential).  Results are
            identical either way; only wall-clock timing changes.
        parallel_backend: ``"thread"`` (default) or ``"process"``.  The
            process backend sidesteps the GIL for CPU-bound local phases
            but requires the metric to be picklable (all registered named
            metrics are; ``minkowski_metric`` closures are not).
        relabel_kernel: coverage kernel of the update step (``"auto"`` /
            ``"vectorized"`` / ``"reference"``); every kernel produces
            bit-identical labels, the knob only trades constants.
        auto_fallback: when true (default), a parallel run silently
            degrades to sequential execution whenever parallelism cannot
            win: a single-CPU box, or every site below
            ``fallback_min_points`` objects (worker startup + pickling
            then dominates — the committed 20k bench showed process_x4 at
            a 0.76x *slowdown*).  The decision lands on the report as
            :attr:`DistributedRunReport.effective_parallelism` /
            ``parallelism_fallback_reason``.  Results are identical
            either way; only wall-clock timing changes.
        fallback_min_points: the largest site must hold at least this
            many objects for parallel fan-out to engage (with
            ``auto_fallback``).
        shared_memory: ``"auto"`` (default) / ``"on"`` / ``"off"`` —
            whether process-backend fan-outs pass site arrays through
            ``multiprocessing.shared_memory`` (zero-copy attach) instead
            of pickling them per task.  Ignored by the thread backend,
            which already shares the address space.
    """

    eps_local: float
    min_pts_local: int
    scheme: str = "rep_scor"
    eps_global: float | None = None
    metric: str | Metric = "euclidean"
    index_kind: str = "auto"
    partition_strategy: str = "uniform_random"
    seed: int = 0
    parallelism: int = 1
    parallel_backend: str = "thread"
    relabel_kernel: str = "auto"
    auto_fallback: bool = True
    fallback_min_points: int = 20_000
    shared_memory: str = "auto"

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {self.parallelism}")
        if self.parallel_backend not in ("thread", "process"):
            raise ValueError(
                f"parallel_backend must be 'thread' or 'process', "
                f"got {self.parallel_backend!r}"
            )
        if self.relabel_kernel not in RELABEL_KERNELS:
            raise ValueError(
                f"unknown relabel_kernel {self.relabel_kernel!r}; "
                f"known: {RELABEL_KERNELS}"
            )
        if self.fallback_min_points < 0:
            raise ValueError(
                f"fallback_min_points must be >= 0, got {self.fallback_min_points}"
            )
        if self.shared_memory not in ("auto", "on", "off"):
            raise ValueError(
                f"shared_memory must be 'auto', 'on' or 'off', "
                f"got {self.shared_memory!r}"
            )


@dataclass(frozen=True)
class RoundPolicy:
    """Server-side round policy for degraded-mode runs.

    Simulated time, not wall time, drives the policy so that runs are
    reproducible: a site's simulated local phase lasts
    ``n_objects / compute_rate_objects_per_s`` (times its straggler
    slowdown), and its model's arrival time adds the transport's
    simulated delivery delay on top.

    Attributes:
        deadline_s: simulated time after which the server rejects late
            local models (``None`` = wait forever, the paper's behavior).
        quorum: minimum fraction of sites whose models must be admitted
            for the round to count as healthy.
        compute_rate_objects_per_s: nominal local clustering throughput
            used to convert a site's object count into simulated seconds.
    """

    deadline_s: float | None = None
    quorum: float = 0.0
    compute_rate_objects_per_s: float = 50_000.0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if not 0.0 <= self.quorum <= 1.0:
            raise ValueError(f"quorum must be in [0, 1], got {self.quorum}")
        if self.compute_rate_objects_per_s <= 0:
            raise ValueError(
                "compute_rate_objects_per_s must be positive, got "
                f"{self.compute_rate_objects_per_s}"
            )

    def sim_local_seconds(self, n_objects: int, slowdown: float = 1.0) -> float:
        """Simulated duration of one site's local phase."""
        return n_objects / self.compute_rate_objects_per_s * slowdown


@dataclass(frozen=True)
class RecoveryPolicy:
    """Recovery-round policy: let failed sites rejoin and heal the model.

    After the initial degraded round, up to ``max_recovery_rounds``
    recovery rounds run.  In each round every still-failed site gets one
    chance to rejoin: crashed sites reboot (re-running their local phase
    if they never computed one; local state survives a crash-after-send),
    sites whose upload was lost, late or quarantined resubmit, and sites
    that missed the broadcast receive it again.  The server folds late
    models into the existing global model *incrementally*
    (:class:`~repro.core.global_model.GlobalModelRepairer`) instead of
    re-running the global DBSCAN, and re-broadcasts only when the repair
    actually changed the model (recovered sites always receive it).

    Site-crash decisions are *not* re-drawn in recovery rounds — a
    crashed site is assumed rebooted — but every transfer still rides the
    resilient transport under the plan's link faults, so rejoins can fail
    again and retry in the next round.

    Attributes:
        max_recovery_rounds: recovery rounds to attempt (0 = disabled,
            today's single-round degraded behavior).
        deadline_s: per-round admission deadline, relative to the round's
            start (``None`` = wait forever).  Like the
            :class:`RoundPolicy` deadline, arrival exactly *at* the
            deadline is admitted.
        rejoin_backoff_s: simulated delay before the first recovery round
            starts (gives rebooting sites time to come back).
        backoff_multiplier: factor applied to the backoff for each
            further round (round *r* waits
            ``rejoin_backoff_s * backoff_multiplier**(r-1)``).
    """

    max_recovery_rounds: int = 0
    deadline_s: float | None = None
    rejoin_backoff_s: float = 0.5
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_recovery_rounds < 0:
            raise ValueError(
                f"max_recovery_rounds must be >= 0, got {self.max_recovery_rounds}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.rejoin_backoff_s < 0:
            raise ValueError(
                f"rejoin_backoff_s must be >= 0, got {self.rejoin_backoff_s}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any recovery round can run."""
        return self.max_recovery_rounds > 0

    def backoff_seconds(self, round_index: int) -> float:
        """Simulated backoff before recovery round ``round_index`` (1-based)."""
        return self.rejoin_backoff_s * self.backoff_multiplier ** (round_index - 1)


@dataclass(frozen=True)
class RecoveryRoundStats:
    """What one recovery round did.

    Attributes:
        round_index: 1-based recovery round number.
        start_sim_seconds: simulated time the round started (previous
            round end + rejoin backoff).
        end_sim_seconds: simulated time of the round's last transport
            activity.
        wall_seconds: driver wall-clock time the round took.
        attempted_sites: sites the round tried to heal (failed or stale
            at round start), sorted.
        recovered_sites: sites that completed the full protocol this
            round (model merged and global labels applied), sorted.
        quarantined_sites: sites whose resubmission was quarantined this
            round (corrupt or invalid), sorted.
        rebroadcast_sites: sites the repaired model was broadcast to,
            sorted.
        relabel_changed_sites: broadcast receivers whose global labels
            actually changed after relabeling, sorted.
        still_failed_sites: sites still failed after the round, sorted.
        retries: transport retries spent in this round.
    """

    round_index: int
    start_sim_seconds: float
    end_sim_seconds: float
    wall_seconds: float
    attempted_sites: list[int]
    recovered_sites: list[int]
    quarantined_sites: list[int]
    rebroadcast_sites: list[int]
    relabel_changed_sites: list[int]
    still_failed_sites: list[int]
    retries: int


@dataclass
class DistributedRunReport:
    """Everything a distributed run produces.

    Every timing field names its clock: ``*_wall_seconds`` is real
    elapsed ``perf_counter`` time on the driver or a worker,
    ``*_cpu_seconds`` is accumulated per-thread CPU time, and
    ``*_sim_seconds`` is the deterministic simulated protocol clock
    (the one ``RoundPolicy`` deadlines and transport delays run on).
    The legacy un-clocked names (``max_local_seconds`` …) remain as
    read-only aliases.

    Attributes:
        sites: the client sites (holding their labels and stats).
        global_model: the broadcast model.
        network: traffic statistics.
        raw_bytes: what centralizing the raw data would have transmitted.
        raw_sim_seconds: simulated transfer time of the raw data.
        max_local_wall_seconds: slowest site's local phase (wall clock,
            measured on whichever worker ran the site).
        global_wall_seconds: server clustering time (wall clock).
        assignment: per original object, its site (when partitioned by the
            runner; ``None`` when sites were handed in pre-split).
        local_wall_seconds: actual elapsed wall time of the whole local
            compute fan-out on the driver (= sum of sites when
            sequential, ideally the max when parallel).
        local_cpu_seconds: CPU time summed over all sites' local phases —
            unlike wall time, this is additive under parallelism.
        relabel_wall_seconds: actual elapsed wall time of the step-4
            relabel fan-out.
        relabel_cpu_seconds: CPU time summed over all sites' relabels.
        local_sim_seconds: simulated time at which the last *admitted*
            local model arrived at the server (0 on the fault-free path,
            which has no simulated timeline).
        round_sim_seconds: simulated time at which the round's last
            transport activity finished — uploads, retries and broadcast
            included (0 on the fault-free path).
        participating_sites: sites whose local model the server admitted
            into the global model, in arrival order.
        failed_sites: sites that missed some part of the round (crashed,
            link failed, deadline missed, or lost the broadcast), sorted.
            A site can appear in both lists: its model was merged but it
            never received the global model back.
        retries: transport retries across all messages of the round.
        degraded: whether the round was degraded — any site failed (even
            after recovery), a site holds stale labels, or the server's
            quorum was missed.
        transport_stats: detailed transport bookkeeping (``None`` for
            fault-free runs, which bypass the resilient transport).
        recovered_sites: sites that failed the initial round but completed
            the protocol in a recovery round, sorted.  They appear in
            ``participating_sites`` too and *not* in ``failed_sites``.
        quarantined_sites: sites whose model was quarantined by the
            integrity gate at least once (corrupt payload or invalid
            model), sorted.  A quarantined site that later recovered is
            listed here *and* in ``recovered_sites``.
        stale_sites: previously healthy sites that missed a re-broadcast
            of a repaired model and therefore hold labels of an older
            global model, sorted.  Stale is not failed — the labels are
            internally consistent, just out of date — but it keeps the
            run degraded.
        recovery_rounds_used: recovery rounds actually executed.
        recovery_rounds: per-round recovery bookkeeping.
        trace: the run's trace document (spans + metrics, see
            ``docs/observability.md``) when the runner was handed a
            tracer; ``None`` otherwise.
        effective_parallelism: workers the fan-outs actually used after
            auto-fallback (equals ``config.parallelism`` when no fallback
            fired).
        parallelism_fallback_reason: why a parallel config degraded to
            sequential execution (``"single_cpu"`` / ``"small_sites"``),
            ``None`` when it did not.
        shm_bytes_shared: payload bytes placed in shared-memory blocks
            instead of being pickled per worker task (0 without the
            shared-memory path).
        shm_setup_seconds: wall time spent copying arrays into the
            shared-memory pool.
        shm_teardown_seconds: wall time spent closing and unlinking the
            pool's blocks.
    """

    sites: list[ClientSite]
    global_model: GlobalModel
    network: NetworkStats
    raw_bytes: int
    raw_sim_seconds: float
    max_local_wall_seconds: float
    global_wall_seconds: float
    assignment: np.ndarray | None = None
    local_wall_seconds: float = 0.0
    local_cpu_seconds: float = 0.0
    relabel_wall_seconds: float = 0.0
    relabel_cpu_seconds: float = 0.0
    local_sim_seconds: float = 0.0
    round_sim_seconds: float = 0.0
    participating_sites: list[int] = field(default_factory=list)
    failed_sites: list[int] = field(default_factory=list)
    retries: int = 0
    degraded: bool = False
    transport_stats: TransportStats | None = None
    recovered_sites: list[int] = field(default_factory=list)
    quarantined_sites: list[int] = field(default_factory=list)
    stale_sites: list[int] = field(default_factory=list)
    recovery_rounds_used: int = 0
    recovery_rounds: list[RecoveryRoundStats] = field(default_factory=list)
    trace: dict | None = None
    effective_parallelism: int = 1
    parallelism_fallback_reason: str | None = None
    shm_bytes_shared: int = 0
    shm_setup_seconds: float = 0.0
    shm_teardown_seconds: float = 0.0

    @property
    def max_local_seconds(self) -> float:
        """Back-compat alias for :attr:`max_local_wall_seconds`."""
        return self.max_local_wall_seconds

    @property
    def global_seconds(self) -> float:
        """Back-compat alias for :attr:`global_wall_seconds`."""
        return self.global_wall_seconds

    @property
    def overall_seconds(self) -> float:
        """The paper's overall runtime (max local + global, wall clock)."""
        return self.max_local_wall_seconds + self.global_wall_seconds

    @property
    def overall_wall_seconds(self) -> float:
        """Clock-named alias for :attr:`overall_seconds`."""
        return self.overall_seconds

    @property
    def n_objects(self) -> int:
        """Objects across all sites."""
        return sum(site.points.shape[0] for site in self.sites)

    @property
    def n_representatives(self) -> int:
        """Representatives the server clustered."""
        return len(self.global_model)

    @property
    def transmission_cost_ratio(self) -> float:
        """Upstream bytes as a fraction of the raw-data baseline.

        ``0.03`` means the models cost 3% of shipping the raw data — the
        paper's "low transmission cost" claim.  0.0 for an empty baseline.
        """
        if self.raw_bytes == 0:
            return 0.0
        return self.network.bytes_upstream / self.raw_bytes

    @property
    def transmission_saving(self) -> float:
        """Fraction of the raw-data baseline *saved* by shipping models.

        The complement of :attr:`transmission_cost_ratio`: ``0.97`` means
        97% of the raw-data bytes never crossed the network.  (Earlier
        revisions returned the cost ratio under this name.)  0.0 for an
        empty baseline.
        """
        if self.raw_bytes == 0:
            return 0.0
        return 1.0 - self.transmission_cost_ratio

    @property
    def bytes_by_kind(self) -> dict[str, int]:
        """Traffic per message kind (``local_model`` vs ``global_model``)."""
        return dict(self.network.bytes_by_kind)

    def flat_metrics(self) -> dict[str, float]:
        """The report as the flat metric dict a RunRecord stores.

        Names follow the :mod:`repro.obs` contract (dotted, units in the
        name, per-kind variants in brackets); the run registry appends
        them and ``python -m repro runs regress`` compares them under the
        direction-aware rules of :mod:`repro.obs.regress`.
        """
        metrics: dict[str, float] = {
            "local.wall_seconds": self.local_wall_seconds,
            "local.cpu_seconds": self.local_cpu_seconds,
            "local.max_wall_seconds": self.max_local_wall_seconds,
            "global.wall_seconds": self.global_wall_seconds,
            "relabel.wall_seconds": self.relabel_wall_seconds,
            "relabel.cpu_seconds": self.relabel_cpu_seconds,
            "overall.wall_seconds": self.overall_wall_seconds,
            "local.admitted_sim_seconds": self.local_sim_seconds,
            "round.round_sim_seconds": self.round_sim_seconds,
            "raw.baseline_sim_seconds": self.raw_sim_seconds,
            "net.bytes_total": float(self.network.bytes_total),
            "net.bytes_upstream": float(self.network.bytes_upstream),
            "net.bytes_downstream": float(self.network.bytes_downstream),
            "transport.retries": float(self.retries),
            "transmission.cost_ratio": self.transmission_cost_ratio,
            "sites.participating_count": float(len(self.participating_sites)),
            "sites.failed": float(len(self.failed_sites)),
            "run.degraded_count": float(self.degraded),
            "model.representatives_count": float(self.n_representatives),
            "model.objects_count": float(self.n_objects),
            "recovery.rounds_used": float(self.recovery_rounds_used),
            "recovery.recovered_sites_count": float(len(self.recovered_sites)),
            "sites.quarantined_count": float(len(self.quarantined_sites)),
            "sites.stale_count": float(len(self.stale_sites)),
            "parallel.effective_workers": float(self.effective_parallelism),
            "parallel.fallback_count": float(
                self.parallelism_fallback_reason is not None
            ),
            "shm.bytes_shared": float(self.shm_bytes_shared),
            "shm.setup_seconds": self.shm_setup_seconds,
            "shm.teardown_seconds": self.shm_teardown_seconds,
        }
        if self.transport_stats is not None:
            metrics["transport.corrupted"] = float(self.transport_stats.n_corrupted)
            metrics["breaker.fast_fails"] = float(
                self.transport_stats.n_fast_failed
            )
            metrics["breaker.state_changes"] = float(
                self.transport_stats.n_breaker_state_changes
            )
        for kind, n_bytes in sorted(self.bytes_by_kind.items()):
            metrics[f"net.bytes[{kind}]"] = float(n_bytes)
        return metrics

    def labels_in_original_order(self) -> np.ndarray:
        """Global labels aligned with the pre-partition object order.

        Raises:
            RuntimeError: when the runner was given pre-split sites (no
                assignment is known).
            ValueError: when the assignment does not cover every site (it
                references unknown site ids, or its per-site object counts
                disagree with the sites' actual data).
        """
        if self.assignment is None:
            raise RuntimeError("no partition assignment recorded for this run")
        assignment = np.asarray(self.assignment, dtype=np.intp)
        n_sites = len(self.sites)
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= n_sites
        ):
            raise ValueError(
                f"assignment references site ids outside 0..{n_sites - 1}"
            )
        counts = np.bincount(assignment, minlength=n_sites)
        for site_id, site in enumerate(self.sites):
            if counts[site_id] != site.points.shape[0]:
                raise ValueError(
                    f"assignment covers {counts[site_id]} objects for site "
                    f"{site_id}, which holds {site.points.shape[0]}"
                )
        # A stable sort by site id lists, per site, its members in original
        # order — exactly the order partition.split handed the points over,
        # so concatenated per-site labels scatter straight back.
        order = np.argsort(assignment, kind="stable")
        out = np.empty(assignment.size, dtype=np.intp)
        out[order] = np.concatenate(
            [site.global_labels for site in self.sites]
        )
        return out


class DistributedRunner:
    """Executes the four DBDC protocol steps over a simulated network.

    With a ``fault_plan`` the run goes through the degraded-mode protocol
    instead: messages travel via a :class:`ResilientTransport` (timeouts,
    retries, backoff), the server applies the ``round_policy``'s deadline
    and quorum, the global model is built from whichever local models
    were admitted, and sites that missed the round fall back to their
    local labels.  Without a plan (or with an inactive one) the runner
    takes the exact legacy code path — reports are bit-identical to the
    fault-free implementation.

    Args:
        config: run configuration.
        network: optional pre-configured network (fresh default otherwise).
        fault_plan: faults to inject (``None`` or inactive = clean run).
        transport_policy: retry/backoff parameters for the fault path.
        round_policy: server deadline/quorum policy for the fault path.
        recovery_policy: optional :class:`RecoveryPolicy`; with
            ``max_recovery_rounds > 0`` failed sites get recovery rounds
            to rejoin and the global model is repaired incrementally.
            ``None`` (or 0 rounds) keeps today's single-round behavior.
        breaker_policy: optional per-link circuit breaker for the
            resilient transport (``None`` = disabled).
        tracer: optional :class:`~repro.obs.Tracer`.  When given, the run
            produces the full span tree (``run > local_phase > site[i]
            …``) and the report carries the trace document.  ``None``
            (the default) leaves the hot path untouched: no spans, no
            allocations, bit-identical output.
        metrics: optional :class:`~repro.obs.MetricsRegistry` threaded
            through the index layer, DBSCAN, server and transport.
    """

    def __init__(
        self,
        config: DistributedRunConfig,
        network: SimulatedNetwork | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        transport_policy: TransportPolicy | None = None,
        round_policy: RoundPolicy | None = None,
        recovery_policy: RecoveryPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.network = network or SimulatedNetwork()
        self.fault_plan = fault_plan
        self.transport_policy = transport_policy or TransportPolicy()
        self.round_policy = round_policy or RoundPolicy()
        self.recovery_policy = recovery_policy or RecoveryPolicy()
        self.breaker_policy = breaker_policy
        self.tracer = tracer
        self.metrics = metrics
        self._effective_parallelism = config.parallelism
        self._fallback_reason: str | None = None
        self._shm_pool: ShmArrayPool | None = None
        self._shm_point_refs: dict[int, ShmArrayRef] = {}
        self._shm_bytes_shared = 0
        self._shm_setup_seconds = 0.0
        self._shm_teardown_seconds = 0.0

    def _make_sites(self, site_points: list[np.ndarray]) -> list[ClientSite]:
        return [
            ClientSite(
                site_id,
                points,
                eps_local=self.config.eps_local,
                min_pts_local=self.config.min_pts_local,
                scheme=self.config.scheme,
                metric=self.config.metric,
                index_kind=self.config.index_kind,
                relabel_kernel=self.config.relabel_kernel,
            )
            for site_id, points in enumerate(site_points)
        ]

    def _resolve_parallelism(
        self, site_points: list[np.ndarray]
    ) -> tuple[int, str | None]:
        """Decide how many workers the fan-outs actually get.

        With ``auto_fallback`` a parallel config degrades to sequential
        execution when parallelism cannot win: one CPU, or every site's
        work below the ``fallback_min_points`` threshold.  Results are
        identical either way — only scheduling changes.
        """
        config = self.config
        if config.parallelism <= 1 or not config.auto_fallback:
            return config.parallelism, None
        if (os.cpu_count() or 1) <= 1:
            return 1, "single_cpu"
        largest = max(
            (np.asarray(points).shape[0] for points in site_points), default=0
        )
        if largest < config.fallback_min_points:
            return 1, "small_sites"
        return config.parallelism, None

    def _setup_shm_pool(self, sites: list[ClientSite]) -> None:
        """Copy every site's points into shared memory, once, traced."""
        setup_start = time.perf_counter()
        pool = ShmArrayPool()
        for site in sites:
            if site.points.size:
                self._shm_point_refs[site.site_id] = pool.share(site.points)
        self._shm_pool = pool
        self._shm_bytes_shared = pool.bytes_shared
        self._shm_setup_seconds = time.perf_counter() - setup_start
        if self.tracer is not None:
            self.tracer.record(
                "shm_pool.setup",
                wall_start=setup_start,
                wall_end=setup_start + self._shm_setup_seconds,
                attrs={"arrays": pool.n_arrays, "bytes": pool.bytes_shared},
            )

    def _close_shm_pool(self) -> None:
        """Unlink every shared block (idempotent), traced."""
        pool = self._shm_pool
        if pool is None:
            return
        self._shm_pool = None
        self._shm_bytes_shared = pool.bytes_shared
        teardown_start = time.perf_counter()
        pool.close()
        self._shm_teardown_seconds = time.perf_counter() - teardown_start
        if self.tracer is not None:
            self.tracer.record(
                "shm_pool.teardown",
                wall_start=teardown_start,
                wall_end=teardown_start + self._shm_teardown_seconds,
            )

    def run_on_sites(
        self,
        site_points: list[np.ndarray],
        assignment: np.ndarray | None = None,
    ) -> DistributedRunReport:
        """Run the protocol over pre-split site data.

        Args:
            site_points: one point array per site.
            assignment: optional original-order assignment (for realignment).

        Returns:
            A :class:`DistributedRunReport`.

        Raises:
            ValueError: when no sites are given.
        """
        if not site_points:
            raise ValueError("at least one site is required")
        self._effective_parallelism, self._fallback_reason = (
            self._resolve_parallelism(site_points)
        )
        self._shm_point_refs = {}
        self._shm_bytes_shared = 0
        self._shm_setup_seconds = 0.0
        self._shm_teardown_seconds = 0.0
        sites = self._make_sites(site_points)
        if (
            self._effective_parallelism > 1
            and len(sites) > 1
            and self.config.parallel_backend == "process"
            and self.config.shared_memory != "off"
        ):
            self._setup_shm_pool(sites)
        try:
            if self.fault_plan is not None and self.fault_plan.is_active():
                return self._run_degraded(sites, site_points, assignment)
            return self._run_fault_free(sites, site_points, assignment)
        finally:
            # Normally a no-op: the run paths tear the pool down before
            # assembling their report so the teardown cost is recorded.
            self._close_shm_pool()

    def _local_fanout(self, sites: list[ClientSite], observing: bool) -> list:
        """Fan the local-phase compute out (shared-memory aware)."""
        if self._shm_pool is None:
            task = _observed_local_task if observing else _local_clustering_task
            return self._map_over(task, sites)
        config = self.config
        specs = [
            _ShmLocalSpec(
                site_id=site.site_id,
                points_ref=self._shm_point_refs.get(site.site_id),
                points=(
                    None if site.site_id in self._shm_point_refs else site.points
                ),
                eps_local=config.eps_local,
                min_pts_local=config.min_pts_local,
                scheme=config.scheme,
                metric=config.metric,
                index_kind=config.index_kind,
                relabel_kernel=config.relabel_kernel,
                observed=observing,
            )
            for site in sites
        ]
        return self._map_over(_shm_local_task, specs)

    def _relabel_fanout(
        self,
        sites: list[ClientSite],
        global_model: GlobalModel,
        observing: bool,
    ) -> list:
        """Fan the step-4 relabel compute out (shared-memory aware)."""
        if self._shm_pool is None:
            task = _observed_relabel_task if observing else _relabel_task
            return self._map_over(task, [(site, global_model) for site in sites])
        config = self.config
        specs = []
        for site in sites:
            labels = site.local_outcome.clustering.labels
            labels_ref = self._shm_pool.share(labels) if labels.size else None
            specs.append(
                _ShmRelabelSpec(
                    site_id=site.site_id,
                    points_ref=self._shm_point_refs.get(site.site_id),
                    points=(
                        None
                        if site.site_id in self._shm_point_refs
                        else site.points
                    ),
                    labels_ref=labels_ref,
                    labels=None if labels_ref is not None else labels,
                    metric=config.metric,
                    relabel_kernel=config.relabel_kernel,
                    model=global_model,
                    observed=observing,
                )
            )
        self._shm_bytes_shared = self._shm_pool.bytes_shared
        return self._map_over(_shm_relabel_task, specs)

    def _raw_cost(self, site_points: list[np.ndarray]) -> tuple[int, float]:
        dim = site_points[0].shape[1] if site_points[0].ndim == 2 else 0
        return self.network.raw_data_cost(
            sum(p.shape[0] for p in site_points), dim
        )

    def _run_fault_free(
        self,
        sites: list[ClientSite],
        site_points: list[np.ndarray],
        assignment: np.ndarray | None,
    ) -> DistributedRunReport:
        """The paper's protocol verbatim: every site answers, every
        message arrives."""
        tracer = self.tracer
        metrics = self.metrics
        observing = tracer is not None or metrics is not None
        server = CentralServer(
            self.config.eps_global,
            metric=self.config.metric,
            index_kind=self.config.index_kind,
            metrics=metrics,
        )
        run_start = time.perf_counter()
        # Steps 1+2: local clustering (possibly parallel) and model
        # transmission.  The compute fans out; results are applied and sent
        # in deterministic site order so reports match sequential runs.
        local_start = time.perf_counter()
        local_results = self._local_fanout(sites, observing)
        compute_end = time.perf_counter()
        local_wall_seconds = compute_end - local_start
        local_cpu_seconds = 0.0
        site_local_spans: list[dict] = []
        upload_entries: list[tuple] = []
        for site, result in zip(sites, local_results):
            if observing:
                outcome, wall_s, cpu_s, spans, worker_metrics = result
                if metrics is not None:
                    metrics.merge(worker_metrics)
                site_local_spans.extend(spans)
            else:
                outcome, wall_s, cpu_s = result
            local_cpu_seconds += cpu_s
            model = site.apply_local_outcome(outcome, wall_s, cpu_s)
            send_start = time.perf_counter() if tracer is not None else 0.0
            message = self.network.send(
                site.site_id, SERVER, "local_model", model.to_bytes()
            )
            if tracer is not None:
                upload_entries.append(
                    (
                        send_start,
                        time.perf_counter(),
                        0.0,
                        message.sim_seconds,
                        {"site": site.site_id, "bytes": message.n_bytes},
                    )
                )
            server.receive_local_model(model)
        upload_end = time.perf_counter()
        # Step 3: global model.
        global_start = time.perf_counter()
        global_model = server.build()
        # Broadcast + step 4: every site relabels (possibly parallel).
        payload = global_model.to_bytes()
        broadcast_start = time.perf_counter()
        broadcast_entries: list[tuple] = []
        for site in sites:
            send_start = time.perf_counter() if tracer is not None else 0.0
            message = self.network.send(
                SERVER, site.site_id, "global_model", payload
            )
            if tracer is not None:
                broadcast_entries.append(
                    (
                        send_start,
                        time.perf_counter(),
                        0.0,
                        message.sim_seconds,
                        {"site": site.site_id, "bytes": message.n_bytes},
                    )
                )
        broadcast_end = time.perf_counter()
        relabel_start = time.perf_counter()
        relabel_results = self._relabel_fanout(sites, global_model, observing)
        relabel_end = time.perf_counter()
        relabel_wall_seconds = relabel_end - relabel_start
        relabel_cpu_seconds = 0.0
        site_relabel_spans: list[dict] = []
        for site, result in zip(sites, relabel_results):
            if observing:
                global_labels, stats, wall_s, cpu_s, spans = result
                site_relabel_spans.extend(spans)
            else:
                global_labels, stats, wall_s, cpu_s = result
            relabel_cpu_seconds += cpu_s
            site.apply_relabel(global_labels, stats, wall_s, cpu_s)
        self._close_shm_pool()
        run_end = time.perf_counter()

        if metrics is not None:
            metrics.set("runner.participating_sites", len(sites))
            metrics.set("runner.failed_sites", 0)
        trace = None
        if tracer is not None:
            self._record_run_spans(
                mode="fault_free",
                n_sites=len(sites),
                run_window=(run_start, run_end),
                local_window=(local_start, compute_end, upload_end),
                site_local_spans=site_local_spans,
                upload_entries=upload_entries,
                global_window=(global_start, server.global_seconds),
                n_representatives=len(global_model),
                broadcast_window=(broadcast_start, broadcast_end),
                broadcast_entries=broadcast_entries,
                relabel_window=(relabel_start, relabel_end, run_end),
                site_relabel_spans=site_relabel_spans,
            )
            trace = trace_document(tracer, metrics)

        raw_bytes, raw_seconds = self._raw_cost(site_points)
        return DistributedRunReport(
            sites=sites,
            global_model=global_model,
            network=self.network.stats(),
            raw_bytes=raw_bytes,
            raw_sim_seconds=raw_seconds,
            max_local_wall_seconds=max(
                site.times.local_wall_seconds for site in sites
            ),
            global_wall_seconds=server.global_seconds,
            assignment=assignment,
            local_wall_seconds=local_wall_seconds,
            local_cpu_seconds=local_cpu_seconds,
            relabel_wall_seconds=relabel_wall_seconds,
            relabel_cpu_seconds=relabel_cpu_seconds,
            participating_sites=[site.site_id for site in sites],
            trace=trace,
            effective_parallelism=self._effective_parallelism,
            parallelism_fallback_reason=self._fallback_reason,
            shm_bytes_shared=self._shm_bytes_shared,
            shm_setup_seconds=self._shm_setup_seconds,
            shm_teardown_seconds=self._shm_teardown_seconds,
        )

    def _record_run_spans(
        self,
        *,
        mode: str,
        n_sites: int,
        run_window: tuple[float, float],
        local_window: tuple[float, float, float],
        site_local_spans: list[dict],
        upload_entries: list[tuple],
        global_window: tuple[float, float],
        n_representatives: int,
        broadcast_window: tuple[float, float],
        broadcast_entries: list[tuple],
        relabel_window: tuple[float, float, float],
        site_relabel_spans: list[dict],
        fallback_window: tuple[float, float] | None = None,
        recovery_entries: list[dict] | None = None,
    ) -> None:
        """Assemble the run's span tree post-hoc from the *same*
        ``perf_counter`` reads that produced the report's timing fields,
        so trace and report reconcile exactly.

        ``local_window`` / ``relabel_window`` are ``(start, compute_end,
        phase_end)``; ``global_window`` is ``(start, duration)`` — the
        duration is the server's own measurement.  Message entries are
        ``(wall_start, wall_end, sim_start, sim_end, attrs)`` tuples.
        """
        tracer = self.tracer
        run_span = tracer.record(
            "run",
            wall_start=run_window[0],
            wall_end=run_window[1],
            attrs={"mode": mode, "n_sites": n_sites},
        )
        local_start, compute_end, upload_end = local_window
        local_span = tracer.record(
            "local_phase",
            wall_start=local_start,
            wall_end=upload_end,
            parent=run_span,
        )
        compute_span = tracer.record(
            "compute",
            wall_start=local_start,
            wall_end=compute_end,
            parent=local_span,
        )
        _graft_worker_spans(compute_span, site_local_spans)
        upload_span = tracer.record(
            "upload",
            wall_start=compute_end,
            wall_end=upload_end,
            parent=local_span,
        )
        for w0, w1, s0, s1, attrs in upload_entries:
            tracer.record(
                "send[local_model]",
                wall_start=w0,
                wall_end=w1,
                sim_start=s0,
                sim_end=s1,
                attrs=attrs,
                parent=upload_span,
            )
        global_start, global_seconds = global_window
        tracer.record(
            "global_phase",
            wall_start=global_start,
            wall_end=global_start + global_seconds,
            attrs={"n_representatives": n_representatives},
            parent=run_span,
        )
        broadcast_span = tracer.record(
            "broadcast",
            wall_start=broadcast_window[0],
            wall_end=broadcast_window[1],
            parent=run_span,
        )
        for w0, w1, s0, s1, attrs in broadcast_entries:
            tracer.record(
                "send[global_model]",
                wall_start=w0,
                wall_end=w1,
                sim_start=s0,
                sim_end=s1,
                attrs=attrs,
                parent=broadcast_span,
            )
        relabel_start, relabel_compute_end, relabel_end = relabel_window
        relabel_span = tracer.record(
            "relabel",
            wall_start=relabel_start,
            wall_end=relabel_end,
            parent=run_span,
        )
        relabel_compute = tracer.record(
            "compute",
            wall_start=relabel_start,
            wall_end=relabel_compute_end,
            parent=relabel_span,
        )
        _graft_worker_spans(relabel_compute, site_relabel_spans)
        for entry in recovery_entries or ():
            round_span = tracer.record(
                f"recovery_round[{entry['round_index']}]",
                wall_start=entry["wall_start"],
                wall_end=entry["wall_end"],
                sim_start=entry["sim_start"],
                sim_end=entry["sim_end"],
                attrs=entry["attrs"],
                parent=run_span,
            )
            _graft_worker_spans(
                round_span,
                entry["site_local_spans"] + entry["site_relabel_spans"],
            )
            for w0, w1, s0, s1, attrs in entry["send_entries"]:
                tracer.record(
                    f"send[{attrs.get('kind', 'message')}]",
                    wall_start=w0,
                    wall_end=w1,
                    sim_start=s0,
                    sim_end=s1,
                    attrs=attrs,
                    parent=round_span,
                )
        if fallback_window is not None:
            tracer.record(
                "degraded_fallback",
                wall_start=fallback_window[0],
                wall_end=fallback_window[1],
                parent=run_span,
            )

    def _run_degraded(
        self,
        sites: list[ClientSite],
        site_points: list[np.ndarray],
        assignment: np.ndarray | None,
    ) -> DistributedRunReport:
        """The degraded-mode protocol: inject faults, retry, apply the
        deadline/quorum policy, and fall back to local labels wherever
        the round could not complete."""
        plan = self.fault_plan
        policy = self.round_policy
        tracer = self.tracer
        metrics = self.metrics
        observing = tracer is not None or metrics is not None
        transport = ResilientTransport(
            self.network,
            plan,
            self.transport_policy,
            breaker_policy=self.breaker_policy,
            metrics=metrics,
        )
        server = CentralServer(
            self.config.eps_global,
            metric=self.config.metric,
            index_kind=self.config.index_kind,
            deadline_s=policy.deadline_s,
            quorum=policy.quorum,
            expected_sites=len(sites),
            metrics=metrics,
        )
        behaviors = {site.site_id: plan.resolve_site(site.site_id) for site in sites}
        failed: dict[int, str] = {}
        retries = 0
        round_sim_end = 0.0

        run_start = time.perf_counter()
        # Steps 1+2 over the sites that survive to compute at all.
        computing = [
            site
            for site in sites
            if not behaviors[site.site_id].crashes_before_local
        ]
        for site in sites:
            if behaviors[site.site_id].crashes_before_local:
                failed[site.site_id] = "crash_before_local"
        local_start = time.perf_counter()
        local_results = self._local_fanout(computing, observing)
        compute_end = time.perf_counter()
        local_wall_seconds = compute_end - local_start
        local_cpu_seconds = 0.0
        site_local_spans: list[dict] = []
        upload_entries: list[tuple] = []
        deliveries: list[tuple[float, int, LocalModel, bool]] = []
        models_by_site: dict[int, LocalModel] = {}
        for site, result in zip(computing, local_results):
            if observing:
                outcome, wall_s, cpu_s, spans, worker_metrics = result
                if metrics is not None:
                    metrics.merge(worker_metrics)
                site_local_spans.extend(spans)
            else:
                outcome, wall_s, cpu_s = result
            local_cpu_seconds += cpu_s
            model = site.apply_local_outcome(outcome, wall_s, cpu_s)
            models_by_site[site.site_id] = model
            sim_local = policy.sim_local_seconds(
                site.points.shape[0], behaviors[site.site_id].slowdown
            )
            send_start = time.perf_counter() if tracer is not None else 0.0
            delivery = transport.deliver(
                site.site_id,
                SERVER,
                "local_model",
                model.to_bytes(),
                start_s=sim_local,
            )
            if tracer is not None:
                upload_entries.append(
                    (
                        send_start,
                        time.perf_counter(),
                        sim_local,
                        delivery.arrival_s,
                        {
                            "site": site.site_id,
                            "bytes": delivery.bytes_sent,
                            "delivered": delivery.delivered,
                            "attempts": delivery.attempts,
                        },
                    )
                )
            retries += delivery.retries
            round_sim_end = max(round_sim_end, delivery.arrival_s)
            if delivery.delivered:
                deliveries.append(
                    (
                        delivery.arrival_s,
                        site.site_id,
                        model,
                        delivery.checksum_ok,
                    )
                )
            else:
                failed[site.site_id] = "link_failed"
        upload_end = time.perf_counter()

        # Step 3: the server admits models in simulated-arrival order —
        # integrity gate first (corrupt payloads are quarantined, never
        # merged), then the round deadline — and builds the global model
        # from whatever was admitted.
        quarantined_total: set[int] = set()
        deliveries.sort(key=lambda entry: (entry[0], entry[1]))
        for arrival_s, site_id, model, checksum_ok in deliveries:
            verdict = server.admit(
                model, arrival_s=arrival_s, checksum_ok=checksum_ok
            )
            if verdict == "quarantined":
                failed[site_id] = "quarantined"
                quarantined_total.add(site_id)
            elif verdict == "deadline_missed":
                failed[site_id] = "deadline_missed"
        global_start = time.perf_counter()
        global_model = server.build(allow_empty=True)
        participating = server.admitted_site_ids
        participating_set = set(participating)

        # Broadcast to the admitted sites that are still up; everyone else
        # keeps local labels.  The broadcast leaves once the server built
        # the model — after the last admitted arrival (simulated clock).
        broadcast_start = max(
            (
                arrival_s
                for arrival_s, site_id, __, __ok in deliveries
                if site_id in participating_set
            ),
            default=0.0,
        )
        local_sim_seconds = broadcast_start
        payload = global_model.to_bytes()
        broadcast_wall_start = time.perf_counter()
        broadcast_entries: list[tuple] = []
        receivers: list[ClientSite] = []
        for site in sites:
            site_id = site.site_id
            if site_id not in participating_set:
                continue
            # A crash-after-send site still gets its broadcast attempts —
            # the server is not omniscient — they just can never land.
            receiver_down = behaviors[site_id].crashes_after_send
            send_start = time.perf_counter() if tracer is not None else 0.0
            delivery = transport.deliver(
                SERVER,
                site_id,
                "global_model",
                payload,
                start_s=broadcast_start,
                receiver_down=receiver_down,
            )
            if tracer is not None:
                broadcast_entries.append(
                    (
                        send_start,
                        time.perf_counter(),
                        broadcast_start,
                        delivery.arrival_s,
                        {
                            "site": site_id,
                            "bytes": delivery.bytes_sent,
                            "delivered": delivery.delivered,
                            "attempts": delivery.attempts,
                        },
                    )
                )
            retries += delivery.retries
            round_sim_end = max(round_sim_end, delivery.arrival_s)
            if receiver_down:
                failed[site_id] = "crash_after_send"
            elif delivery.delivered and delivery.checksum_ok:
                receivers.append(site)
            elif delivery.delivered:
                # The bytes arrived but flipped in flight: the site must
                # not apply a corrupt global model.
                failed[site_id] = "broadcast_corrupt"
            else:
                failed[site_id] = "broadcast_lost"
        broadcast_wall_end = time.perf_counter()

        # Step 4 on the sites that actually hold the global model.
        relabel_start = time.perf_counter()
        relabel_results = self._relabel_fanout(receivers, global_model, observing)
        relabel_compute_end = time.perf_counter()
        relabel_wall_seconds = relabel_compute_end - relabel_start
        relabel_cpu_seconds = 0.0
        site_relabel_spans: list[dict] = []
        for site, result in zip(receivers, relabel_results):
            if observing:
                global_labels, stats, wall_s, cpu_s, spans = result
                site_relabel_spans.extend(spans)
            else:
                global_labels, stats, wall_s, cpu_s = result
            relabel_cpu_seconds += cpu_s
            site.apply_relabel(global_labels, stats, wall_s, cpu_s)
        relabel_end = time.perf_counter()

        # --- Recovery rounds (RecoveryPolicy). -------------------------
        # Failed sites rejoin, the server heals the global model
        # incrementally, stale receivers get the repaired model again.
        # With ``max_recovery_rounds = 0`` (the default) nothing below
        # runs and the round is bit-identical to the single-round
        # protocol.
        recovery = self.recovery_policy
        recovery_rounds_stats: list[RecoveryRoundStats] = []
        recovery_entries: list[dict] = []
        stale: set[int] = set()
        recovered_total: set[int] = set()
        relabeled_sites = {site.site_id for site in receivers}
        sites_by_id = {site.site_id: site for site in sites}
        repairer: GlobalModelRepairer | None = None
        rounds_used = 0
        for round_index in range(1, recovery.max_recovery_rounds + 1):
            reasons = dict(failed)
            attempted = sorted(set(reasons) | stale)
            if not attempted:
                break
            rounds_used += 1
            round_wall_start = time.perf_counter()
            round_start = round_sim_end + recovery.backoff_seconds(round_index)
            round_sim_last = round_start
            retries_before = retries
            round_send_entries: list[tuple] = []
            round_local_spans: list[dict] = []
            round_relabel_spans: list[dict] = []

            # Reboot: a site that crashed before its local phase runs it
            # now (crash decisions are not re-drawn — the site is assumed
            # back up — but its straggler slowdown still applies).
            rebooting = [
                sites_by_id[site_id]
                for site_id in attempted
                if reasons.get(site_id) == "crash_before_local"
            ]
            reboot_results = self._local_fanout(rebooting, observing)
            fresh_compute: set[int] = set()
            for site, result in zip(rebooting, reboot_results):
                if observing:
                    outcome, wall_s, cpu_s, spans, worker_metrics = result
                    if metrics is not None:
                        metrics.merge(worker_metrics)
                    round_local_spans.extend(spans)
                else:
                    outcome, wall_s, cpu_s = result
                local_cpu_seconds += cpu_s
                models_by_site[site.site_id] = site.apply_local_outcome(
                    outcome, wall_s, cpu_s
                )
                fresh_compute.add(site.site_id)

            # Re-upload: every upload-reason site resubmits its model
            # through the same faulty transport (fresh sequence numbers,
            # so the retry streams differ from the first round's).
            round_deliveries: list[tuple[float, int, LocalModel, bool]] = []
            rebroadcast_start = round_start
            for site_id in attempted:
                if reasons.get(site_id) not in _UPLOAD_REASONS:
                    continue
                model = models_by_site[site_id]
                start_s = round_start
                if site_id in fresh_compute:
                    start_s += policy.sim_local_seconds(
                        sites_by_id[site_id].points.shape[0],
                        behaviors[site_id].slowdown,
                    )
                send_start = time.perf_counter() if tracer is not None else 0.0
                delivery = transport.deliver(
                    site_id,
                    SERVER,
                    "local_model",
                    model.to_bytes(),
                    start_s=start_s,
                )
                if tracer is not None:
                    round_send_entries.append(
                        (
                            send_start,
                            time.perf_counter(),
                            start_s,
                            delivery.arrival_s,
                            {
                                "site": site_id,
                                "kind": "local_model",
                                "bytes": delivery.bytes_sent,
                                "delivered": delivery.delivered,
                                "attempts": delivery.attempts,
                            },
                        )
                    )
                retries += delivery.retries
                round_sim_last = max(round_sim_last, delivery.arrival_s)
                if delivery.delivered:
                    round_deliveries.append(
                        (
                            delivery.arrival_s,
                            site_id,
                            model,
                            delivery.checksum_ok,
                        )
                    )
                else:
                    failed[site_id] = "link_failed"

            # Admission under the per-round recovery deadline (relative
            # to the round start; arrival exactly *at* it is admitted).
            # Integrity first, as in the main round: a corrupt or invalid
            # resubmission is quarantined regardless of when it arrived.
            round_quarantined: list[int] = []
            admitted_models: list[tuple[int, LocalModel]] = []
            round_deliveries.sort(key=lambda entry: (entry[0], entry[1]))
            for arrival_s, site_id, model, checksum_ok in round_deliveries:
                if not checksum_ok or model.validate():
                    server.admit(
                        model,
                        arrival_s=arrival_s,
                        checksum_ok=checksum_ok,
                        enforce_deadline=False,
                    )
                    failed[site_id] = "quarantined"
                    quarantined_total.add(site_id)
                    round_quarantined.append(site_id)
                elif (
                    recovery.deadline_s is not None
                    and arrival_s - round_start > recovery.deadline_s
                ):
                    failed[site_id] = "deadline_missed"
                else:
                    server.admit(
                        model, arrival_s=arrival_s, enforce_deadline=False
                    )
                    admitted_models.append((site_id, model))
                    rebroadcast_start = max(rebroadcast_start, arrival_s)

            # Heal the global model incrementally with the late models —
            # no from-scratch DBSCAN (the equivalence tests pin that the
            # repaired partition matches a rebuild anyway).
            model_changed = any(
                len(model.representatives) for __, model in admitted_models
            )
            if admitted_models:
                if len(global_model) == 0 and model_changed:
                    # Nothing to repair onto: the base round admitted no
                    # representatives, so eps_global never got a real
                    # value.  A full rebuild re-derives the paper default.
                    global_model = server.build(allow_empty=True)
                    repairer = GlobalModelRepairer(
                        global_model, metric=self.config.metric
                    )
                else:
                    if repairer is None:
                        repairer = GlobalModelRepairer(
                            global_model, metric=self.config.metric
                        )
                    for __, model in admitted_models:
                        global_model, __changed = repairer.add_model(model)

            # Re-broadcast: recovering sites always get the model; every
            # previously relabeled (or stale) site gets it again whenever
            # the repair added representatives — new representatives can
            # promote noise on *any* site (Definition 9), not just on the
            # late one's.
            need_broadcast = {
                site_id
                for site_id in attempted
                if reasons.get(site_id) in _BROADCAST_REASONS
            }
            need_broadcast.update(site_id for site_id, __ in admitted_models)
            need_broadcast.update(stale)
            if model_changed:
                need_broadcast.update(relabeled_sites)
            payload = global_model.to_bytes()
            round_receivers: list[ClientSite] = []
            for site_id in sorted(need_broadcast):
                send_start = time.perf_counter() if tracer is not None else 0.0
                delivery = transport.deliver(
                    SERVER,
                    site_id,
                    "global_model",
                    payload,
                    start_s=rebroadcast_start,
                )
                if tracer is not None:
                    round_send_entries.append(
                        (
                            send_start,
                            time.perf_counter(),
                            rebroadcast_start,
                            delivery.arrival_s,
                            {
                                "site": site_id,
                                "kind": "global_model",
                                "bytes": delivery.bytes_sent,
                                "delivered": delivery.delivered,
                                "attempts": delivery.attempts,
                            },
                        )
                    )
                retries += delivery.retries
                round_sim_last = max(round_sim_last, delivery.arrival_s)
                if delivery.delivered and delivery.checksum_ok:
                    round_receivers.append(sites_by_id[site_id])
                else:
                    reason = (
                        "broadcast_corrupt"
                        if delivery.delivered
                        else "broadcast_lost"
                    )
                    if site_id in failed:
                        failed[site_id] = reason
                    else:
                        # A healthy receiver that misses a refresh is
                        # *stale*, not failed: its old labels are still
                        # internally consistent, just out of date.  It is
                        # retried next round and never fallback-wiped.
                        stale.add(site_id)

            # Step 4 for everyone who received the repaired model.
            round_relabel_results = self._relabel_fanout(
                round_receivers, global_model, observing
            )
            round_changed: list[int] = []
            round_recovered: list[int] = []
            for site, result in zip(round_receivers, round_relabel_results):
                if observing:
                    global_labels, site_stats, wall_s, cpu_s, spans = result
                    round_relabel_spans.extend(spans)
                else:
                    global_labels, site_stats, wall_s, cpu_s = result
                relabel_cpu_seconds += cpu_s
                site_id = site.site_id
                old_labels = (
                    site.global_labels if site_id in relabeled_sites else None
                )
                site.apply_relabel(global_labels, site_stats, wall_s, cpu_s)
                if old_labels is None or not np.array_equal(
                    old_labels, site.global_labels
                ):
                    round_changed.append(site_id)
                if site_id in failed:
                    del failed[site_id]
                    recovered_total.add(site_id)
                    round_recovered.append(site_id)
                stale.discard(site_id)
                relabeled_sites.add(site_id)

            round_sim_end = max(round_sim_end, round_sim_last)
            round_wall_end = time.perf_counter()
            recovery_rounds_stats.append(
                RecoveryRoundStats(
                    round_index=round_index,
                    start_sim_seconds=round_start,
                    end_sim_seconds=round_sim_last,
                    wall_seconds=round_wall_end - round_wall_start,
                    attempted_sites=attempted,
                    recovered_sites=sorted(round_recovered),
                    quarantined_sites=sorted(round_quarantined),
                    rebroadcast_sites=sorted(need_broadcast),
                    relabel_changed_sites=sorted(round_changed),
                    still_failed_sites=sorted(failed),
                    retries=retries - retries_before,
                )
            )
            if metrics is not None:
                metrics.inc("recovery.rounds")
            if tracer is not None:
                recovery_entries.append(
                    {
                        "round_index": round_index,
                        "wall_start": round_wall_start,
                        "wall_end": round_wall_end,
                        "sim_start": round_start,
                        "sim_end": round_sim_last,
                        "attrs": {
                            "attempted": len(attempted),
                            "recovered": len(round_recovered),
                            "rebroadcast": len(need_broadcast),
                        },
                        "site_local_spans": round_local_spans,
                        "site_relabel_spans": round_relabel_spans,
                        "send_entries": round_send_entries,
                    }
                )
        if metrics is not None and recovered_total:
            metrics.set("recovery.recovered_sites", len(recovered_total))
        participating = server.admitted_site_ids

        # Degraded fallback, in deterministic site order: fresh global ids
        # beyond everything the global model handed out.
        fallback_start = time.perf_counter()
        next_id = (
            int(global_model.global_labels.max()) + 1 if len(global_model) else 0
        )
        for site in sites:
            if site.site_id in failed:
                next_id = site.apply_degraded_labels(
                    failed[site.site_id], id_offset=next_id
                )
        self._close_shm_pool()
        run_end = time.perf_counter()

        degraded = bool(failed) or bool(stale) or not server.quorum_met
        if metrics is not None:
            metrics.set("runner.participating_sites", len(participating))
            metrics.set("runner.failed_sites", len(failed))
            if degraded:
                metrics.inc("runner.degraded_rounds")
        trace = None
        if tracer is not None:
            self._record_run_spans(
                mode="degraded",
                n_sites=len(sites),
                run_window=(run_start, run_end),
                local_window=(local_start, compute_end, upload_end),
                site_local_spans=site_local_spans,
                upload_entries=upload_entries,
                global_window=(global_start, server.global_seconds),
                n_representatives=len(global_model),
                broadcast_window=(broadcast_wall_start, broadcast_wall_end),
                broadcast_entries=broadcast_entries,
                relabel_window=(relabel_start, relabel_compute_end, relabel_end),
                site_relabel_spans=site_relabel_spans,
                fallback_window=(fallback_start, run_end),
                recovery_entries=recovery_entries,
            )
            trace = trace_document(tracer, metrics)

        raw_bytes, raw_seconds = self._raw_cost(site_points)
        return DistributedRunReport(
            sites=sites,
            global_model=global_model,
            network=self.network.stats(),
            raw_bytes=raw_bytes,
            raw_sim_seconds=raw_seconds,
            max_local_wall_seconds=max(
                site.times.local_wall_seconds for site in sites
            ),
            global_wall_seconds=server.global_seconds,
            assignment=assignment,
            local_wall_seconds=local_wall_seconds,
            local_cpu_seconds=local_cpu_seconds,
            relabel_wall_seconds=relabel_wall_seconds,
            relabel_cpu_seconds=relabel_cpu_seconds,
            local_sim_seconds=local_sim_seconds,
            round_sim_seconds=round_sim_end,
            participating_sites=participating,
            failed_sites=sorted(failed),
            retries=retries,
            degraded=degraded,
            transport_stats=transport.stats,
            recovered_sites=sorted(recovered_total),
            quarantined_sites=sorted(quarantined_total),
            stale_sites=sorted(stale),
            recovery_rounds_used=rounds_used,
            recovery_rounds=recovery_rounds_stats,
            trace=trace,
            effective_parallelism=self._effective_parallelism,
            parallelism_fallback_reason=self._fallback_reason,
            shm_bytes_shared=self._shm_bytes_shared,
            shm_setup_seconds=self._shm_setup_seconds,
            shm_teardown_seconds=self._shm_teardown_seconds,
        )

    def _map_over(self, task: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        """Run ``task`` over ``items``, in order, possibly concurrently.

        ``_effective_parallelism`` (the post-fallback worker count
        resolved by :meth:`run_on_sites`) bounds the pool size."""
        workers = min(self._effective_parallelism, len(items))
        if workers <= 1:
            return [task(item) for item in items]
        executor_cls: type[Executor] = (
            ThreadPoolExecutor
            if self.config.parallel_backend == "thread"
            else ProcessPoolExecutor
        )
        with executor_cls(max_workers=workers) as executor:
            return list(executor.map(task, items))

    def run(self, points: np.ndarray, n_sites: int) -> DistributedRunReport:
        """Partition ``points`` and run the protocol.

        Args:
            points: the complete data set, shape ``(n, d)``.
            n_sites: number of client sites.

        Returns:
            A :class:`DistributedRunReport` whose labels can be realigned
            with the original object order.
        """
        points = np.asarray(points, dtype=float)
        assignment = partition(
            points, n_sites, self.config.partition_strategy, self.config.seed
        )
        return self.run_on_sites(split(points, assignment), assignment)
