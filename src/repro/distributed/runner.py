"""End-to-end orchestration of the DBDC protocol over the simulated network.

:class:`DistributedRunner` wires :class:`~repro.distributed.site.ClientSite`
objects, a :class:`~repro.distributed.server.CentralServer` and a
:class:`~repro.distributed.network.SimulatedNetwork` into the four protocol
steps of the paper's Figure 2, with the same runtime accounting the paper
uses (sites run conceptually in parallel: overall = max local + global).

This is the "whole system" view; :func:`repro.core.dbdc.run_dbdc` offers the
same pipeline as a plain function when network accounting is not needed.

The local phase (steps 1+2) and the relabel fan-out (step 4) are
"conceptually parallel" in the paper — every site works independently.  The
``parallelism`` config knob makes that real: with ``parallelism > 1`` the
runner fans the per-site compute out over a ``concurrent.futures`` executor
(threads by default, processes via ``parallel_backend="process"``) and then
applies the results in deterministic site order, so the report is identical
to a sequential run except for wall-clock timing fields.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.core.models import GlobalModel
from repro.data.distance import Metric
from repro.distributed.network import SERVER, NetworkStats, SimulatedNetwork
from repro.distributed.partition import partition, split
from repro.distributed.server import CentralServer
from repro.distributed.site import ClientSite
from repro.faults.plan import FaultPlan
from repro.faults.transport import ResilientTransport, TransportPolicy, TransportStats

__all__ = [
    "DistributedRunConfig",
    "DistributedRunReport",
    "DistributedRunner",
    "RoundPolicy",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _local_clustering_task(site: ClientSite):
    """Worker task: a site's pure local-clustering compute (picklable)."""
    return site.compute_local_clustering()


def _relabel_task(item: tuple[ClientSite, GlobalModel]):
    """Worker task: a site's pure relabel compute (picklable)."""
    site, model = item
    return site.compute_relabel(model)


@dataclass(frozen=True)
class DistributedRunConfig:
    """Configuration of a distributed run.

    Attributes:
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme.
        eps_global: server merge radius (``None`` → paper default).
        metric: distance metric.
        index_kind: neighbor index kind.
        partition_strategy: how the data is spread over sites.
        seed: partitioning seed.
        parallelism: maximum number of sites whose local phase / relabel
            pass runs concurrently (1 = strictly sequential).  Results are
            identical either way; only wall-clock timing changes.
        parallel_backend: ``"thread"`` (default) or ``"process"``.  The
            process backend sidesteps the GIL for CPU-bound local phases
            but requires the metric to be picklable (all registered named
            metrics are; ``minkowski_metric`` closures are not).
    """

    eps_local: float
    min_pts_local: int
    scheme: str = "rep_scor"
    eps_global: float | None = None
    metric: str | Metric = "euclidean"
    index_kind: str = "auto"
    partition_strategy: str = "uniform_random"
    seed: int = 0
    parallelism: int = 1
    parallel_backend: str = "thread"

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {self.parallelism}")
        if self.parallel_backend not in ("thread", "process"):
            raise ValueError(
                f"parallel_backend must be 'thread' or 'process', "
                f"got {self.parallel_backend!r}"
            )


@dataclass(frozen=True)
class RoundPolicy:
    """Server-side round policy for degraded-mode runs.

    Simulated time, not wall time, drives the policy so that runs are
    reproducible: a site's simulated local phase lasts
    ``n_objects / compute_rate_objects_per_s`` (times its straggler
    slowdown), and its model's arrival time adds the transport's
    simulated delivery delay on top.

    Attributes:
        deadline_s: simulated time after which the server rejects late
            local models (``None`` = wait forever, the paper's behavior).
        quorum: minimum fraction of sites whose models must be admitted
            for the round to count as healthy.
        compute_rate_objects_per_s: nominal local clustering throughput
            used to convert a site's object count into simulated seconds.
    """

    deadline_s: float | None = None
    quorum: float = 0.0
    compute_rate_objects_per_s: float = 50_000.0

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if not 0.0 <= self.quorum <= 1.0:
            raise ValueError(f"quorum must be in [0, 1], got {self.quorum}")
        if self.compute_rate_objects_per_s <= 0:
            raise ValueError(
                "compute_rate_objects_per_s must be positive, got "
                f"{self.compute_rate_objects_per_s}"
            )

    def sim_local_seconds(self, n_objects: int, slowdown: float = 1.0) -> float:
        """Simulated duration of one site's local phase."""
        return n_objects / self.compute_rate_objects_per_s * slowdown


@dataclass
class DistributedRunReport:
    """Everything a distributed run produces.

    Attributes:
        sites: the client sites (holding their labels and stats).
        global_model: the broadcast model.
        network: traffic statistics.
        raw_bytes: what centralizing the raw data would have transmitted.
        raw_sim_seconds: simulated transfer time of the raw data.
        max_local_seconds: slowest site's local phase.
        global_seconds: server clustering time.
        assignment: per original object, its site (when partitioned by the
            runner; ``None`` when sites were handed in pre-split).
        local_wall_seconds: actual elapsed wall time of the whole local
            phase on the driver (= sum of sites when sequential, ideally
            the max when parallel).
        relabel_wall_seconds: actual elapsed wall time of the step-4
            relabel fan-out.
        participating_sites: sites whose local model the server admitted
            into the global model, in arrival order.
        failed_sites: sites that missed some part of the round (crashed,
            link failed, deadline missed, or lost the broadcast), sorted.
            A site can appear in both lists: its model was merged but it
            never received the global model back.
        retries: transport retries across all messages of the round.
        degraded: whether the round was degraded — any site failed, or
            the server's quorum was missed.
        transport_stats: detailed transport bookkeeping (``None`` for
            fault-free runs, which bypass the resilient transport).
    """

    sites: list[ClientSite]
    global_model: GlobalModel
    network: NetworkStats
    raw_bytes: int
    raw_sim_seconds: float
    max_local_seconds: float
    global_seconds: float
    assignment: np.ndarray | None = None
    local_wall_seconds: float = 0.0
    relabel_wall_seconds: float = 0.0
    participating_sites: list[int] = field(default_factory=list)
    failed_sites: list[int] = field(default_factory=list)
    retries: int = 0
    degraded: bool = False
    transport_stats: TransportStats | None = None

    @property
    def overall_seconds(self) -> float:
        """The paper's overall runtime (max local + global)."""
        return self.max_local_seconds + self.global_seconds

    @property
    def n_objects(self) -> int:
        """Objects across all sites."""
        return sum(site.points.shape[0] for site in self.sites)

    @property
    def n_representatives(self) -> int:
        """Representatives the server clustered."""
        return len(self.global_model)

    @property
    def transmission_cost_ratio(self) -> float:
        """Upstream bytes as a fraction of the raw-data baseline.

        ``0.03`` means the models cost 3% of shipping the raw data — the
        paper's "low transmission cost" claim.  0.0 for an empty baseline.
        """
        if self.raw_bytes == 0:
            return 0.0
        return self.network.bytes_upstream / self.raw_bytes

    @property
    def transmission_saving(self) -> float:
        """Fraction of the raw-data baseline *saved* by shipping models.

        The complement of :attr:`transmission_cost_ratio`: ``0.97`` means
        97% of the raw-data bytes never crossed the network.  (Earlier
        revisions returned the cost ratio under this name.)  0.0 for an
        empty baseline.
        """
        if self.raw_bytes == 0:
            return 0.0
        return 1.0 - self.transmission_cost_ratio

    @property
    def bytes_by_kind(self) -> dict[str, int]:
        """Traffic per message kind (``local_model`` vs ``global_model``)."""
        return dict(self.network.bytes_by_kind)

    def labels_in_original_order(self) -> np.ndarray:
        """Global labels aligned with the pre-partition object order.

        Raises:
            RuntimeError: when the runner was given pre-split sites (no
                assignment is known).
            ValueError: when the assignment does not cover every site (it
                references unknown site ids, or its per-site object counts
                disagree with the sites' actual data).
        """
        if self.assignment is None:
            raise RuntimeError("no partition assignment recorded for this run")
        assignment = np.asarray(self.assignment, dtype=np.intp)
        n_sites = len(self.sites)
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= n_sites
        ):
            raise ValueError(
                f"assignment references site ids outside 0..{n_sites - 1}"
            )
        counts = np.bincount(assignment, minlength=n_sites)
        for site_id, site in enumerate(self.sites):
            if counts[site_id] != site.points.shape[0]:
                raise ValueError(
                    f"assignment covers {counts[site_id]} objects for site "
                    f"{site_id}, which holds {site.points.shape[0]}"
                )
        # A stable sort by site id lists, per site, its members in original
        # order — exactly the order partition.split handed the points over,
        # so concatenated per-site labels scatter straight back.
        order = np.argsort(assignment, kind="stable")
        out = np.empty(assignment.size, dtype=np.intp)
        out[order] = np.concatenate(
            [site.global_labels for site in self.sites]
        )
        return out


class DistributedRunner:
    """Executes the four DBDC protocol steps over a simulated network.

    With a ``fault_plan`` the run goes through the degraded-mode protocol
    instead: messages travel via a :class:`ResilientTransport` (timeouts,
    retries, backoff), the server applies the ``round_policy``'s deadline
    and quorum, the global model is built from whichever local models
    were admitted, and sites that missed the round fall back to their
    local labels.  Without a plan (or with an inactive one) the runner
    takes the exact legacy code path — reports are bit-identical to the
    fault-free implementation.

    Args:
        config: run configuration.
        network: optional pre-configured network (fresh default otherwise).
        fault_plan: faults to inject (``None`` or inactive = clean run).
        transport_policy: retry/backoff parameters for the fault path.
        round_policy: server deadline/quorum policy for the fault path.
    """

    def __init__(
        self,
        config: DistributedRunConfig,
        network: SimulatedNetwork | None = None,
        *,
        fault_plan: FaultPlan | None = None,
        transport_policy: TransportPolicy | None = None,
        round_policy: RoundPolicy | None = None,
    ) -> None:
        self.config = config
        self.network = network or SimulatedNetwork()
        self.fault_plan = fault_plan
        self.transport_policy = transport_policy or TransportPolicy()
        self.round_policy = round_policy or RoundPolicy()

    def _make_sites(self, site_points: list[np.ndarray]) -> list[ClientSite]:
        return [
            ClientSite(
                site_id,
                points,
                eps_local=self.config.eps_local,
                min_pts_local=self.config.min_pts_local,
                scheme=self.config.scheme,
                metric=self.config.metric,
                index_kind=self.config.index_kind,
            )
            for site_id, points in enumerate(site_points)
        ]

    def run_on_sites(
        self,
        site_points: list[np.ndarray],
        assignment: np.ndarray | None = None,
    ) -> DistributedRunReport:
        """Run the protocol over pre-split site data.

        Args:
            site_points: one point array per site.
            assignment: optional original-order assignment (for realignment).

        Returns:
            A :class:`DistributedRunReport`.

        Raises:
            ValueError: when no sites are given.
        """
        if not site_points:
            raise ValueError("at least one site is required")
        sites = self._make_sites(site_points)
        if self.fault_plan is not None and self.fault_plan.is_active():
            return self._run_degraded(sites, site_points, assignment)
        return self._run_fault_free(sites, site_points, assignment)

    def _raw_cost(self, site_points: list[np.ndarray]) -> tuple[int, float]:
        dim = site_points[0].shape[1] if site_points[0].ndim == 2 else 0
        return self.network.raw_data_cost(
            sum(p.shape[0] for p in site_points), dim
        )

    def _run_fault_free(
        self,
        sites: list[ClientSite],
        site_points: list[np.ndarray],
        assignment: np.ndarray | None,
    ) -> DistributedRunReport:
        """The paper's protocol verbatim: every site answers, every
        message arrives."""
        server = CentralServer(
            self.config.eps_global,
            metric=self.config.metric,
            index_kind=self.config.index_kind,
        )
        # Steps 1+2: local clustering (possibly parallel) and model
        # transmission.  The compute fans out; results are applied and sent
        # in deterministic site order so reports match sequential runs.
        wall_start = time.perf_counter()
        local_results = self._map_over(_local_clustering_task, sites)
        local_wall_seconds = time.perf_counter() - wall_start
        for site, (outcome, seconds) in zip(sites, local_results):
            model = site.apply_local_outcome(outcome, seconds)
            self.network.send(site.site_id, SERVER, "local_model", model.to_bytes())
            server.receive_local_model(model)
        # Step 3: global model.
        global_model = server.build()
        # Broadcast + step 4: every site relabels (possibly parallel).
        payload = global_model.to_bytes()
        for site in sites:
            self.network.send(SERVER, site.site_id, "global_model", payload)
        wall_start = time.perf_counter()
        relabel_results = self._map_over(
            _relabel_task, [(site, global_model) for site in sites]
        )
        relabel_wall_seconds = time.perf_counter() - wall_start
        for site, (global_labels, stats, seconds) in zip(sites, relabel_results):
            site.apply_relabel(global_labels, stats, seconds)
        raw_bytes, raw_seconds = self._raw_cost(site_points)
        return DistributedRunReport(
            sites=sites,
            global_model=global_model,
            network=self.network.stats(),
            raw_bytes=raw_bytes,
            raw_sim_seconds=raw_seconds,
            max_local_seconds=max(site.times.local_seconds for site in sites),
            global_seconds=server.global_seconds,
            assignment=assignment,
            local_wall_seconds=local_wall_seconds,
            relabel_wall_seconds=relabel_wall_seconds,
            participating_sites=[site.site_id for site in sites],
        )

    def _run_degraded(
        self,
        sites: list[ClientSite],
        site_points: list[np.ndarray],
        assignment: np.ndarray | None,
    ) -> DistributedRunReport:
        """The degraded-mode protocol: inject faults, retry, apply the
        deadline/quorum policy, and fall back to local labels wherever
        the round could not complete."""
        plan = self.fault_plan
        policy = self.round_policy
        transport = ResilientTransport(self.network, plan, self.transport_policy)
        server = CentralServer(
            self.config.eps_global,
            metric=self.config.metric,
            index_kind=self.config.index_kind,
            deadline_s=policy.deadline_s,
            quorum=policy.quorum,
            expected_sites=len(sites),
        )
        behaviors = {site.site_id: plan.resolve_site(site.site_id) for site in sites}
        failed: dict[int, str] = {}
        retries = 0

        # Steps 1+2 over the sites that survive to compute at all.
        computing = [
            site
            for site in sites
            if not behaviors[site.site_id].crashes_before_local
        ]
        for site in sites:
            if behaviors[site.site_id].crashes_before_local:
                failed[site.site_id] = "crash_before_local"
        wall_start = time.perf_counter()
        local_results = self._map_over(_local_clustering_task, computing)
        local_wall_seconds = time.perf_counter() - wall_start
        deliveries: list[tuple[float, int, object]] = []
        for site, (outcome, seconds) in zip(computing, local_results):
            model = site.apply_local_outcome(outcome, seconds)
            sim_local = policy.sim_local_seconds(
                site.points.shape[0], behaviors[site.site_id].slowdown
            )
            delivery = transport.deliver(
                site.site_id,
                SERVER,
                "local_model",
                model.to_bytes(),
                start_s=sim_local,
            )
            retries += delivery.retries
            if delivery.delivered:
                deliveries.append((delivery.arrival_s, site.site_id, model))
            else:
                failed[site.site_id] = "link_failed"

        # Step 3: the server admits models in simulated-arrival order and
        # builds the global model from whatever made the deadline.
        deliveries.sort(key=lambda entry: (entry[0], entry[1]))
        for arrival_s, site_id, model in deliveries:
            if not server.receive_local_model(model, arrival_s=arrival_s):
                failed[site_id] = "deadline_missed"
        global_model = server.build(allow_empty=True)
        participating = server.admitted_site_ids
        participating_set = set(participating)

        # Broadcast to the admitted sites that are still up; everyone else
        # keeps local labels.  The broadcast leaves once the server built
        # the model — after the last admitted arrival.
        broadcast_start = max(
            (
                arrival_s
                for arrival_s, site_id, __ in deliveries
                if site_id in participating_set
            ),
            default=0.0,
        )
        payload = global_model.to_bytes()
        receivers: list[ClientSite] = []
        for site in sites:
            site_id = site.site_id
            if site_id not in participating_set:
                continue
            if behaviors[site_id].crashes_after_send:
                failed[site_id] = "crash_after_send"
                continue
            delivery = transport.deliver(
                SERVER, site_id, "global_model", payload, start_s=broadcast_start
            )
            retries += delivery.retries
            if delivery.delivered:
                receivers.append(site)
            else:
                failed[site_id] = "broadcast_lost"

        # Step 4 on the sites that actually hold the global model.
        wall_start = time.perf_counter()
        relabel_results = self._map_over(
            _relabel_task, [(site, global_model) for site in receivers]
        )
        relabel_wall_seconds = time.perf_counter() - wall_start
        for site, (global_labels, stats, seconds) in zip(receivers, relabel_results):
            site.apply_relabel(global_labels, stats, seconds)

        # Degraded fallback, in deterministic site order: fresh global ids
        # beyond everything the global model handed out.
        next_id = (
            int(global_model.global_labels.max()) + 1 if len(global_model) else 0
        )
        for site in sites:
            if site.site_id in failed:
                next_id = site.apply_degraded_labels(
                    failed[site.site_id], id_offset=next_id
                )

        raw_bytes, raw_seconds = self._raw_cost(site_points)
        return DistributedRunReport(
            sites=sites,
            global_model=global_model,
            network=self.network.stats(),
            raw_bytes=raw_bytes,
            raw_sim_seconds=raw_seconds,
            max_local_seconds=max(site.times.local_seconds for site in sites),
            global_seconds=server.global_seconds,
            assignment=assignment,
            local_wall_seconds=local_wall_seconds,
            relabel_wall_seconds=relabel_wall_seconds,
            participating_sites=participating,
            failed_sites=sorted(failed),
            retries=retries,
            degraded=bool(failed) or not server.quorum_met,
            transport_stats=transport.stats,
        )

    def _map_over(self, task: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        """Run ``task`` over ``items``, in order, possibly concurrently."""
        workers = min(self.config.parallelism, len(items))
        if workers <= 1:
            return [task(item) for item in items]
        executor_cls: type[Executor] = (
            ThreadPoolExecutor
            if self.config.parallel_backend == "thread"
            else ProcessPoolExecutor
        )
        with executor_cls(max_workers=workers) as executor:
            return list(executor.map(task, items))

    def run(self, points: np.ndarray, n_sites: int) -> DistributedRunReport:
        """Partition ``points`` and run the protocol.

        Args:
            points: the complete data set, shape ``(n, d)``.
            n_sites: number of client sites.

        Returns:
            A :class:`DistributedRunReport` whose labels can be realigned
            with the original object order.
        """
        points = np.asarray(points, dtype=float)
        assignment = partition(
            points, n_sites, self.config.partition_strategy, self.config.seed
        )
        return self.run_on_sites(split(points, assignment), assignment)
