"""End-to-end orchestration of the DBDC protocol over the simulated network.

:class:`DistributedRunner` wires :class:`~repro.distributed.site.ClientSite`
objects, a :class:`~repro.distributed.server.CentralServer` and a
:class:`~repro.distributed.network.SimulatedNetwork` into the four protocol
steps of the paper's Figure 2, with the same runtime accounting the paper
uses (sites run conceptually in parallel: overall = max local + global).

This is the "whole system" view; :func:`repro.core.dbdc.run_dbdc` offers the
same pipeline as a plain function when network accounting is not needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.models import GlobalModel
from repro.data.distance import Metric
from repro.distributed.network import SERVER, NetworkStats, SimulatedNetwork
from repro.distributed.partition import partition, split
from repro.distributed.server import CentralServer
from repro.distributed.site import ClientSite

__all__ = ["DistributedRunConfig", "DistributedRunReport", "DistributedRunner"]


@dataclass(frozen=True)
class DistributedRunConfig:
    """Configuration of a distributed run.

    Attributes:
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme.
        eps_global: server merge radius (``None`` → paper default).
        metric: distance metric.
        index_kind: neighbor index kind.
        partition_strategy: how the data is spread over sites.
        seed: partitioning seed.
    """

    eps_local: float
    min_pts_local: int
    scheme: str = "rep_scor"
    eps_global: float | None = None
    metric: str | Metric = "euclidean"
    index_kind: str = "auto"
    partition_strategy: str = "uniform_random"
    seed: int = 0


@dataclass
class DistributedRunReport:
    """Everything a distributed run produces.

    Attributes:
        sites: the client sites (holding their labels and stats).
        global_model: the broadcast model.
        network: traffic statistics.
        raw_bytes: what centralizing the raw data would have transmitted.
        raw_sim_seconds: simulated transfer time of the raw data.
        max_local_seconds: slowest site's local phase.
        global_seconds: server clustering time.
        assignment: per original object, its site (when partitioned by the
            runner; ``None`` when sites were handed in pre-split).
    """

    sites: list[ClientSite]
    global_model: GlobalModel
    network: NetworkStats
    raw_bytes: int
    raw_sim_seconds: float
    max_local_seconds: float
    global_seconds: float
    assignment: np.ndarray | None = None

    @property
    def overall_seconds(self) -> float:
        """The paper's overall runtime (max local + global)."""
        return self.max_local_seconds + self.global_seconds

    @property
    def n_objects(self) -> int:
        """Objects across all sites."""
        return sum(site.points.shape[0] for site in self.sites)

    @property
    def n_representatives(self) -> int:
        """Representatives the server clustered."""
        return len(self.global_model)

    @property
    def transmission_saving(self) -> float:
        """Upstream bytes as a fraction of the raw-data baseline."""
        if self.raw_bytes == 0:
            return 0.0
        return self.network.bytes_upstream / self.raw_bytes

    def labels_in_original_order(self) -> np.ndarray:
        """Global labels aligned with the pre-partition object order.

        Raises:
            RuntimeError: when the runner was given pre-split sites (no
                assignment is known).
        """
        if self.assignment is None:
            raise RuntimeError("no partition assignment recorded for this run")
        positions = np.empty(self.assignment.size, dtype=np.intp)
        for site_id in range(len(self.sites)):
            members = np.flatnonzero(self.assignment == site_id)
            positions[members] = np.arange(members.size)
        out = np.empty(self.assignment.size, dtype=np.intp)
        for i, (site_id, pos) in enumerate(zip(self.assignment, positions)):
            out[i] = self.sites[site_id].global_labels[pos]
        return out


class DistributedRunner:
    """Executes the four DBDC protocol steps over a simulated network.

    Args:
        config: run configuration.
        network: optional pre-configured network (fresh default otherwise).
    """

    def __init__(
        self,
        config: DistributedRunConfig,
        network: SimulatedNetwork | None = None,
    ) -> None:
        self.config = config
        self.network = network or SimulatedNetwork()

    def _make_sites(self, site_points: list[np.ndarray]) -> list[ClientSite]:
        return [
            ClientSite(
                site_id,
                points,
                eps_local=self.config.eps_local,
                min_pts_local=self.config.min_pts_local,
                scheme=self.config.scheme,
                metric=self.config.metric,
                index_kind=self.config.index_kind,
            )
            for site_id, points in enumerate(site_points)
        ]

    def run_on_sites(
        self,
        site_points: list[np.ndarray],
        assignment: np.ndarray | None = None,
    ) -> DistributedRunReport:
        """Run the protocol over pre-split site data.

        Args:
            site_points: one point array per site.
            assignment: optional original-order assignment (for realignment).

        Returns:
            A :class:`DistributedRunReport`.

        Raises:
            ValueError: when no sites are given.
        """
        if not site_points:
            raise ValueError("at least one site is required")
        sites = self._make_sites(site_points)
        server = CentralServer(
            self.config.eps_global,
            metric=self.config.metric,
            index_kind=self.config.index_kind,
        )
        # Steps 1+2: local clustering and model transmission.
        for site in sites:
            model = site.run_local_clustering()
            self.network.send(site.site_id, SERVER, "local_model", model.to_bytes())
            server.receive_local_model(model)
        # Step 3: global model.
        global_model = server.build()
        # Broadcast + step 4: every site relabels.
        payload = global_model.to_bytes()
        for site in sites:
            self.network.send(SERVER, site.site_id, "global_model", payload)
            site.receive_global_model(global_model)
        dim = site_points[0].shape[1] if site_points[0].ndim == 2 else 0
        raw_bytes, raw_seconds = self.network.raw_data_cost(
            sum(p.shape[0] for p in site_points), dim
        )
        return DistributedRunReport(
            sites=sites,
            global_model=global_model,
            network=self.network.stats(),
            raw_bytes=raw_bytes,
            raw_sim_seconds=raw_seconds,
            max_local_seconds=max(site.times.local_seconds for site in sites),
            global_seconds=server.global_seconds,
            assignment=assignment,
        )

    def run(self, points: np.ndarray, n_sites: int) -> DistributedRunReport:
        """Partition ``points`` and run the protocol.

        Args:
            points: the complete data set, shape ``(n, d)``.
            n_sites: number of client sites.

        Returns:
            A :class:`DistributedRunReport` whose labels can be realigned
            with the original object order.
        """
        points = np.asarray(points, dtype=float)
        assignment = partition(
            points, n_sites, self.config.partition_strategy, self.config.seed
        )
        return self.run_on_sites(split(points, assignment), assignment)
