"""End-to-end orchestration of the DBDC protocol over the simulated network.

:class:`DistributedRunner` wires :class:`~repro.distributed.site.ClientSite`
objects, a :class:`~repro.distributed.server.CentralServer` and a
:class:`~repro.distributed.network.SimulatedNetwork` into the four protocol
steps of the paper's Figure 2, with the same runtime accounting the paper
uses (sites run conceptually in parallel: overall = max local + global).

This is the "whole system" view; :func:`repro.core.dbdc.run_dbdc` offers the
same pipeline as a plain function when network accounting is not needed.

The local phase (steps 1+2) and the relabel fan-out (step 4) are
"conceptually parallel" in the paper — every site works independently.  The
``parallelism`` config knob makes that real: with ``parallelism > 1`` the
runner fans the per-site compute out over a ``concurrent.futures`` executor
(threads by default, processes via ``parallel_backend="process"``) and then
applies the results in deterministic site order, so the report is identical
to a sequential run except for wall-clock timing fields.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.core.models import GlobalModel
from repro.data.distance import Metric
from repro.distributed.network import SERVER, NetworkStats, SimulatedNetwork
from repro.distributed.partition import partition, split
from repro.distributed.server import CentralServer
from repro.distributed.site import ClientSite

__all__ = ["DistributedRunConfig", "DistributedRunReport", "DistributedRunner"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def _local_clustering_task(site: ClientSite):
    """Worker task: a site's pure local-clustering compute (picklable)."""
    return site.compute_local_clustering()


def _relabel_task(item: tuple[ClientSite, GlobalModel]):
    """Worker task: a site's pure relabel compute (picklable)."""
    site, model = item
    return site.compute_relabel(model)


@dataclass(frozen=True)
class DistributedRunConfig:
    """Configuration of a distributed run.

    Attributes:
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme.
        eps_global: server merge radius (``None`` → paper default).
        metric: distance metric.
        index_kind: neighbor index kind.
        partition_strategy: how the data is spread over sites.
        seed: partitioning seed.
        parallelism: maximum number of sites whose local phase / relabel
            pass runs concurrently (1 = strictly sequential).  Results are
            identical either way; only wall-clock timing changes.
        parallel_backend: ``"thread"`` (default) or ``"process"``.  The
            process backend sidesteps the GIL for CPU-bound local phases
            but requires the metric to be picklable (all registered named
            metrics are; ``minkowski_metric`` closures are not).
    """

    eps_local: float
    min_pts_local: int
    scheme: str = "rep_scor"
    eps_global: float | None = None
    metric: str | Metric = "euclidean"
    index_kind: str = "auto"
    partition_strategy: str = "uniform_random"
    seed: int = 0
    parallelism: int = 1
    parallel_backend: str = "thread"

    def __post_init__(self) -> None:
        if self.parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {self.parallelism}")
        if self.parallel_backend not in ("thread", "process"):
            raise ValueError(
                f"parallel_backend must be 'thread' or 'process', "
                f"got {self.parallel_backend!r}"
            )


@dataclass
class DistributedRunReport:
    """Everything a distributed run produces.

    Attributes:
        sites: the client sites (holding their labels and stats).
        global_model: the broadcast model.
        network: traffic statistics.
        raw_bytes: what centralizing the raw data would have transmitted.
        raw_sim_seconds: simulated transfer time of the raw data.
        max_local_seconds: slowest site's local phase.
        global_seconds: server clustering time.
        assignment: per original object, its site (when partitioned by the
            runner; ``None`` when sites were handed in pre-split).
        local_wall_seconds: actual elapsed wall time of the whole local
            phase on the driver (= sum of sites when sequential, ideally
            the max when parallel).
        relabel_wall_seconds: actual elapsed wall time of the step-4
            relabel fan-out.
    """

    sites: list[ClientSite]
    global_model: GlobalModel
    network: NetworkStats
    raw_bytes: int
    raw_sim_seconds: float
    max_local_seconds: float
    global_seconds: float
    assignment: np.ndarray | None = None
    local_wall_seconds: float = 0.0
    relabel_wall_seconds: float = 0.0

    @property
    def overall_seconds(self) -> float:
        """The paper's overall runtime (max local + global)."""
        return self.max_local_seconds + self.global_seconds

    @property
    def n_objects(self) -> int:
        """Objects across all sites."""
        return sum(site.points.shape[0] for site in self.sites)

    @property
    def n_representatives(self) -> int:
        """Representatives the server clustered."""
        return len(self.global_model)

    @property
    def transmission_saving(self) -> float:
        """Upstream bytes as a fraction of the raw-data baseline."""
        if self.raw_bytes == 0:
            return 0.0
        return self.network.bytes_upstream / self.raw_bytes

    def labels_in_original_order(self) -> np.ndarray:
        """Global labels aligned with the pre-partition object order.

        Raises:
            RuntimeError: when the runner was given pre-split sites (no
                assignment is known).
            ValueError: when the assignment does not cover every site (it
                references unknown site ids, or its per-site object counts
                disagree with the sites' actual data).
        """
        if self.assignment is None:
            raise RuntimeError("no partition assignment recorded for this run")
        assignment = np.asarray(self.assignment, dtype=np.intp)
        n_sites = len(self.sites)
        if assignment.size and (
            assignment.min() < 0 or assignment.max() >= n_sites
        ):
            raise ValueError(
                f"assignment references site ids outside 0..{n_sites - 1}"
            )
        counts = np.bincount(assignment, minlength=n_sites)
        for site_id, site in enumerate(self.sites):
            if counts[site_id] != site.points.shape[0]:
                raise ValueError(
                    f"assignment covers {counts[site_id]} objects for site "
                    f"{site_id}, which holds {site.points.shape[0]}"
                )
        # A stable sort by site id lists, per site, its members in original
        # order — exactly the order partition.split handed the points over,
        # so concatenated per-site labels scatter straight back.
        order = np.argsort(assignment, kind="stable")
        out = np.empty(assignment.size, dtype=np.intp)
        out[order] = np.concatenate(
            [site.global_labels for site in self.sites]
        )
        return out


class DistributedRunner:
    """Executes the four DBDC protocol steps over a simulated network.

    Args:
        config: run configuration.
        network: optional pre-configured network (fresh default otherwise).
    """

    def __init__(
        self,
        config: DistributedRunConfig,
        network: SimulatedNetwork | None = None,
    ) -> None:
        self.config = config
        self.network = network or SimulatedNetwork()

    def _make_sites(self, site_points: list[np.ndarray]) -> list[ClientSite]:
        return [
            ClientSite(
                site_id,
                points,
                eps_local=self.config.eps_local,
                min_pts_local=self.config.min_pts_local,
                scheme=self.config.scheme,
                metric=self.config.metric,
                index_kind=self.config.index_kind,
            )
            for site_id, points in enumerate(site_points)
        ]

    def run_on_sites(
        self,
        site_points: list[np.ndarray],
        assignment: np.ndarray | None = None,
    ) -> DistributedRunReport:
        """Run the protocol over pre-split site data.

        Args:
            site_points: one point array per site.
            assignment: optional original-order assignment (for realignment).

        Returns:
            A :class:`DistributedRunReport`.

        Raises:
            ValueError: when no sites are given.
        """
        if not site_points:
            raise ValueError("at least one site is required")
        sites = self._make_sites(site_points)
        server = CentralServer(
            self.config.eps_global,
            metric=self.config.metric,
            index_kind=self.config.index_kind,
        )
        # Steps 1+2: local clustering (possibly parallel) and model
        # transmission.  The compute fans out; results are applied and sent
        # in deterministic site order so reports match sequential runs.
        wall_start = time.perf_counter()
        local_results = self._map_over(_local_clustering_task, sites)
        local_wall_seconds = time.perf_counter() - wall_start
        for site, (outcome, seconds) in zip(sites, local_results):
            model = site.apply_local_outcome(outcome, seconds)
            self.network.send(site.site_id, SERVER, "local_model", model.to_bytes())
            server.receive_local_model(model)
        # Step 3: global model.
        global_model = server.build()
        # Broadcast + step 4: every site relabels (possibly parallel).
        payload = global_model.to_bytes()
        for site in sites:
            self.network.send(SERVER, site.site_id, "global_model", payload)
        wall_start = time.perf_counter()
        relabel_results = self._map_over(
            _relabel_task, [(site, global_model) for site in sites]
        )
        relabel_wall_seconds = time.perf_counter() - wall_start
        for site, (global_labels, stats, seconds) in zip(sites, relabel_results):
            site.apply_relabel(global_labels, stats, seconds)
        dim = site_points[0].shape[1] if site_points[0].ndim == 2 else 0
        raw_bytes, raw_seconds = self.network.raw_data_cost(
            sum(p.shape[0] for p in site_points), dim
        )
        return DistributedRunReport(
            sites=sites,
            global_model=global_model,
            network=self.network.stats(),
            raw_bytes=raw_bytes,
            raw_sim_seconds=raw_seconds,
            max_local_seconds=max(site.times.local_seconds for site in sites),
            global_seconds=server.global_seconds,
            assignment=assignment,
            local_wall_seconds=local_wall_seconds,
            relabel_wall_seconds=relabel_wall_seconds,
        )

    def _map_over(self, task: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        """Run ``task`` over ``items``, in order, possibly concurrently."""
        workers = min(self.config.parallelism, len(items))
        if workers <= 1:
            return [task(item) for item in items]
        executor_cls: type[Executor] = (
            ThreadPoolExecutor
            if self.config.parallel_backend == "thread"
            else ProcessPoolExecutor
        )
        with executor_cls(max_workers=workers) as executor:
            return list(executor.map(task, items))

    def run(self, points: np.ndarray, n_sites: int) -> DistributedRunReport:
        """Partition ``points`` and run the protocol.

        Args:
            points: the complete data set, shape ``(n, d)``.
            n_sites: number of client sites.

        Returns:
            A :class:`DistributedRunReport` whose labels can be realigned
            with the original object order.
        """
        points = np.asarray(points, dtype=float)
        assignment = partition(
            points, n_sites, self.config.partition_strategy, self.config.seed
        )
        return self.run_on_sites(split(points, assignment), assignment)
