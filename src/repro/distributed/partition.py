"""Data partitioners: how the database is spread over client sites.

The paper's evaluation "equally distributed the data set onto the different
client sites" — i.e. a uniform random split (:func:`uniform_random`).  The
other partitioners probe that assumption in the ablation benchmarks:

* :func:`round_robin` — deterministic equal split,
* :func:`spatial_blocks` — geography-correlated sites (e.g. the paper's
  DaimlerChrysler Europe/US motivation: each site sees one region),
* :func:`skewed_sizes` — sites of very different cardinality (supermarket
  chains with big and small stores).

All partitioners return an *assignment array*: per object, the id of the
site it is placed on.  ``split`` materializes the per-site point arrays.
"""

from __future__ import annotations

import numpy as np

from repro.data.generators import as_rng

__all__ = [
    "uniform_random",
    "round_robin",
    "spatial_blocks",
    "skewed_sizes",
    "split",
    "PARTITIONERS",
    "partition",
]


def _check(n: int, n_sites: int) -> None:
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites}")
    if n < n_sites:
        raise ValueError(f"cannot spread {n} objects over {n_sites} sites")


def uniform_random(
    n: int, n_sites: int, seed: int | np.random.Generator = 0
) -> np.ndarray:
    """Equal-size random assignment (the paper's setting).

    Sites receive ``n // n_sites`` objects each (the remainder spread one
    by one), membership chosen by a random permutation.

    Args:
        n: number of objects.
        n_sites: number of client sites.
        seed: RNG seed or generator.

    Returns:
        Assignment array of length ``n``.
    """
    _check(n, n_sites)
    rng = as_rng(seed)
    assignment = np.arange(n, dtype=np.intp) % n_sites
    return assignment[rng.permutation(n)]


def round_robin(n: int, n_sites: int) -> np.ndarray:
    """Deterministic equal split: object ``i`` goes to site ``i % n_sites``."""
    _check(n, n_sites)
    return np.arange(n, dtype=np.intp) % n_sites


def spatial_blocks(points: np.ndarray, n_sites: int, axis: int = 0) -> np.ndarray:
    """Geography-correlated split: contiguous slabs along one axis.

    Every site sees one spatial region — the hardest case for DBDC, since
    clusters that straddle slab borders exist on no site in full.

    Args:
        points: array of shape ``(n, d)``.
        n_sites: number of sites.
        axis: coordinate axis to slice along.

    Returns:
        Assignment array of length ``n``.
    """
    points = np.asarray(points, dtype=float)
    _check(points.shape[0], n_sites)
    order = np.argsort(points[:, axis], kind="stable")
    assignment = np.empty(points.shape[0], dtype=np.intp)
    chunks = np.array_split(order, n_sites)
    for site, chunk in enumerate(chunks):
        assignment[chunk] = site
    return assignment


def skewed_sizes(
    n: int,
    n_sites: int,
    *,
    ratio: float = 4.0,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Random assignment with geometrically skewed site sizes.

    Site ``i`` receives a share proportional to ``ratio^(-i)``: with the
    default ratio the largest site holds ~``ratio``× the next one.

    Args:
        n: number of objects.
        n_sites: number of sites.
        ratio: size ratio between consecutive sites (> 1).
        seed: RNG seed or generator.

    Returns:
        Assignment array of length ``n`` (every site non-empty).

    Raises:
        ValueError: if ``ratio <= 1``.
    """
    if ratio <= 1:
        raise ValueError(f"ratio must be > 1, got {ratio}")
    _check(n, n_sites)
    rng = as_rng(seed)
    shares = np.power(ratio, -np.arange(n_sites, dtype=float))
    shares /= shares.sum()
    counts = np.maximum(1, np.floor(shares * n).astype(int))
    while counts.sum() > n:
        counts[int(np.argmax(counts))] -= 1
    while counts.sum() < n:
        counts[int(np.argmin(counts))] += 1
    assignment = np.repeat(np.arange(n_sites, dtype=np.intp), counts)
    return assignment[rng.permutation(n)]


def split(points: np.ndarray, assignment: np.ndarray) -> list[np.ndarray]:
    """Materialize per-site point arrays from an assignment.

    Args:
        points: array of shape ``(n, d)``.
        assignment: per object, the site id.

    Returns:
        One array per site id ``0..max``.
    """
    points = np.asarray(points, dtype=float)
    assignment = np.asarray(assignment, dtype=np.intp)
    if assignment.size != points.shape[0]:
        raise ValueError(
            f"{points.shape[0]} points but {assignment.size} assignments"
        )
    n_sites = int(assignment.max()) + 1 if assignment.size else 0
    return [points[assignment == site] for site in range(n_sites)]


PARTITIONERS = ("uniform_random", "round_robin", "spatial_blocks", "skewed_sizes")


def partition(
    points: np.ndarray,
    n_sites: int,
    strategy: str = "uniform_random",
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Dispatch to a partitioner by name.

    Args:
        points: array of shape ``(n, d)``.
        n_sites: number of client sites.
        strategy: one of :data:`PARTITIONERS`.
        seed: RNG seed (ignored by deterministic strategies).

    Returns:
        Assignment array of length ``n``.

    Raises:
        ValueError: for unknown strategies.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if strategy == "uniform_random":
        return uniform_random(n, n_sites, seed)
    if strategy == "round_robin":
        return round_robin(n, n_sites)
    if strategy == "spatial_blocks":
        return spatial_blocks(points, n_sites)
    if strategy == "skewed_sizes":
        return skewed_sizes(n, n_sites, seed=seed)
    raise ValueError(f"unknown strategy {strategy!r}; known: {PARTITIONERS}")
