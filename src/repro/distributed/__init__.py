"""The simulated distributed system: sites, server, partitioning, network."""

from repro.distributed.network import (
    SERVER,
    LinkSpec,
    Message,
    NetworkStats,
    SimulatedNetwork,
)
from repro.distributed.partition import (
    PARTITIONERS,
    partition,
    round_robin,
    skewed_sizes,
    spatial_blocks,
    split,
    uniform_random,
)
from repro.distributed.runner import (
    DistributedRunConfig,
    DistributedRunner,
    DistributedRunReport,
    RoundPolicy,
)
from repro.distributed.hierarchy import (
    HierarchicalReport,
    RegionReport,
    condense_models,
    run_hierarchical_dbdc,
)
from repro.distributed.incremental_site import (
    DriftReport,
    IncrementalClientSite,
    model_drift,
)
from repro.distributed.queries import (
    ClusterAggregate,
    FederationQueries,
    SitePartial,
)
from repro.distributed.scenario import RoundStats, StreamingScenario
from repro.distributed.server import CentralServer, IncrementalServer
from repro.distributed.site import ClientSite

__all__ = [
    "HierarchicalReport",
    "RegionReport",
    "condense_models",
    "run_hierarchical_dbdc",
    "DriftReport",
    "IncrementalClientSite",
    "model_drift",
    "ClusterAggregate",
    "FederationQueries",
    "SitePartial",
    "RoundStats",
    "StreamingScenario",
    "SERVER",
    "LinkSpec",
    "Message",
    "NetworkStats",
    "SimulatedNetwork",
    "PARTITIONERS",
    "partition",
    "round_robin",
    "skewed_sizes",
    "spatial_blocks",
    "split",
    "uniform_random",
    "DistributedRunConfig",
    "DistributedRunner",
    "DistributedRunReport",
    "RoundPolicy",
    "CentralServer",
    "IncrementalServer",
    "ClientSite",
]
