"""An incremental client site: evolving local data, lazy model retransmission.

Section 4's fourth argument for DBSCAN is the existence of an efficient
incremental version: "only if the local clustering changes 'considerably',
we have to transmit a new local model to the central site".  This module
implements that behaviour:

* the site maintains its clustering with
  :class:`~repro.clustering.incremental.IncrementalDBSCAN` as objects
  arrive and depart,
* its ``REP_Scor`` local model can be derived from the maintained state at
  any time,
* :meth:`IncrementalClientSite.model_drift` quantifies how far the current
  model has moved from the last transmitted one, and
  :meth:`IncrementalClientSite.maybe_transmit` retransmits only when the
  drift exceeds a threshold.

Drift measure: the symmetric share of representatives in either model that
are *not* covered (within their ε-range) by any representative of the other
model, plus any change in the local cluster count.  Two models describing
the same cluster areas have drift ~0 even if the concrete specific core
points differ — exactly the "considerable change" semantics the paper
wants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.incremental import IncrementalDBSCAN
from repro.core.local import build_rep_scor_from_clustering
from repro.core.models import LocalModel
from repro.data.distance import Metric, get_metric

__all__ = ["DriftReport", "IncrementalClientSite", "model_drift"]


@dataclass(frozen=True)
class DriftReport:
    """How much a local model moved since the last transmission.

    Attributes:
        uncovered_fraction: symmetric share of representatives not covered
            by the other model's representatives (0 = same areas).
        cluster_count_delta: absolute change in the number of local
            clusters described.
        drift: the scalar used against the threshold —
            ``uncovered_fraction + min(1, cluster_count_delta)``.
    """

    uncovered_fraction: float
    cluster_count_delta: int

    @property
    def drift(self) -> float:
        return self.uncovered_fraction + min(1, self.cluster_count_delta)


def _coverage_misses(
    sources: LocalModel, targets: LocalModel, metric: Metric
) -> int:
    """How many of ``sources``' reps no rep of ``targets`` covers."""
    if not len(targets):
        return len(sources)
    target_points = targets.points()
    target_ranges = targets.eps_ranges()
    misses = 0
    for rep in sources.representatives:
        distances = metric.to_many(rep.point, target_points)
        if not bool((distances <= target_ranges).any()):
            misses += 1
    return misses


def model_drift(
    old: LocalModel, new: LocalModel, *, metric: str | Metric = "euclidean"
) -> DriftReport:
    """Quantify the change between two local models of the same site.

    Args:
        old: the last transmitted model.
        new: the freshly derived model.
        metric: distance metric.

    Returns:
        A :class:`DriftReport`.
    """
    resolved = get_metric(metric)
    total = len(old) + len(new)
    if total == 0:
        uncovered = 0.0
    else:
        misses = _coverage_misses(new, old, resolved) + _coverage_misses(
            old, new, resolved
        )
        uncovered = misses / total
    return DriftReport(
        uncovered_fraction=uncovered,
        cluster_count_delta=abs(old.n_local_clusters - new.n_local_clusters),
    )


class IncrementalClientSite:
    """A client site whose data evolves over time.

    Args:
        site_id: unique site identifier.
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        dim: object dimensionality.
        metric: distance metric.
        drift_threshold: retransmit when the drift exceeds this value.
    """

    def __init__(
        self,
        site_id: int,
        *,
        eps_local: float,
        min_pts_local: int,
        dim: int,
        metric: str | Metric = "euclidean",
        drift_threshold: float = 0.2,
    ) -> None:
        if drift_threshold < 0:
            raise ValueError(f"drift_threshold must be >= 0, got {drift_threshold}")
        self.site_id = site_id
        self.eps_local = float(eps_local)
        self.min_pts_local = int(min_pts_local)
        self.metric = get_metric(metric)
        self.drift_threshold = float(drift_threshold)
        self._clustering = IncrementalDBSCAN(
            eps_local, min_pts_local, dim, metric=self.metric
        )
        self._transmitted: LocalModel | None = None
        self.n_transmissions = 0

    # ------------------------------------------------------------------
    # data evolution
    # ------------------------------------------------------------------
    def add_object(self, point: np.ndarray) -> int:
        """Insert one object; returns its stable id."""
        return self._clustering.insert(point)

    def add_objects(self, points: np.ndarray) -> list[int]:
        """Insert a batch of objects; returns their stable ids."""
        return [self._clustering.insert(p) for p in np.asarray(points, dtype=float)]

    def remove_object(self, object_id: int) -> None:
        """Delete one object by its stable id."""
        self._clustering.delete(object_id)

    @property
    def n_objects(self) -> int:
        """Current number of objects on the site."""
        return len(self._clustering)

    @property
    def n_local_clusters(self) -> int:
        """Current number of local clusters."""
        return self._clustering.cluster_count()

    # ------------------------------------------------------------------
    # model derivation and transmission policy
    # ------------------------------------------------------------------
    def current_model(self) -> LocalModel:
        """Derive the ``REP_Scor`` model from the maintained clustering."""
        points = self._clustering.points()
        labels = self._clustering.labels()
        live = self._clustering.live_indices()
        core = np.asarray(
            [self._clustering.is_core(int(i)) for i in live], dtype=bool
        )
        return build_rep_scor_from_clustering(
            points,
            labels,
            core,
            self.eps_local,
            self.min_pts_local,
            site_id=self.site_id,
            metric=self.metric,
        )

    def drift_since_transmission(self) -> DriftReport:
        """Drift of the current model vs the last transmitted one.

        A site that never transmitted reports maximal drift.
        """
        current = self.current_model()
        if self._transmitted is None:
            return DriftReport(uncovered_fraction=1.0, cluster_count_delta=max(1, current.n_local_clusters))
        return model_drift(self._transmitted, current, metric=self.metric)

    def maybe_transmit(self) -> LocalModel | None:
        """Return a fresh model iff the clustering changed considerably.

        Returns:
            The new :class:`~repro.core.models.LocalModel` when the drift
            exceeds the threshold (the site records it as transmitted), or
            ``None`` when the last transmitted model is still good enough.
        """
        current = self.current_model()
        if self._transmitted is not None:
            report = model_drift(self._transmitted, current, metric=self.metric)
            if report.drift <= self.drift_threshold:
                return None
        self._transmitted = current
        self.n_transmissions += 1
        return current

    @property
    def transmitted_model(self) -> LocalModel | None:
        """The last transmitted model (``None`` before the first one)."""
        return self._transmitted
