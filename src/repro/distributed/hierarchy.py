"""Hierarchical DBDC: sites → regional servers → one global server.

A natural extension of the paper's two-level architecture to organizations
whose sites are themselves grouped — the paper's own DaimlerChrysler
motivation ("some data ... in Europe and some data in the US") suggests a
continental tier between stores and headquarters.

The key observation making this work: a *local model* is just a set of
``(r, ε_r)`` pairs, and that shape is closed under aggregation.  A regional
server therefore:

1. collects the local models of its sites,
2. **condenses** them: a representative that lies within ``Eps_local`` of
   an already-kept representative is dropped, and the kept one's ε-range
   grows to ``max(ε_kept, dist + ε_dropped)`` so every object the dropped
   representative covered stays covered (the same greedy idea as
   Definition 6, lifted one level up),
3. forwards only the condensed set over the long-haul link.

The top server merges the condensed regional models exactly like the flat
server would, and the global model is broadcast down the tree; every site
relabels as usual (§7 unchanged).  Condensation preserves *coverage*, so
the relabeled clustering stays close to the flat run's, while the
long-haul link carries a fraction of the flat topology's traffic — the
trade the tests and the hierarchy example quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.global_model import build_global_model
from repro.core.models import GlobalModel, LocalModel, Representative
from repro.data.distance import Metric, get_metric
from repro.distributed.network import SERVER, NetworkStats, SimulatedNetwork
from repro.distributed.site import ClientSite

__all__ = [
    "RegionReport",
    "HierarchicalReport",
    "condense_models",
    "run_hierarchical_dbdc",
]


def condense_models(
    models: list[LocalModel],
    radius: float,
    *,
    region_id: int = 0,
    metric: str | Metric = "euclidean",
) -> LocalModel:
    """Coverage-preserving condensation of several local models into one.

    Representatives are scanned in order; one that falls within ``radius``
    of an already-kept representative is absorbed into it — the kept
    representative's ε-range grows to ``max(ε_kept, dist + ε_absorbed)``
    so the absorbed representative's whole area remains covered.

    Args:
        models: the local models to aggregate.
        radius: absorption radius (use the sites' ``Eps_local``; larger
            radii condense harder at the cost of coarser ε-ranges).
        region_id: stamped as the condensed model's ``site_id``.
        metric: distance metric.

    Returns:
        One :class:`~repro.core.models.LocalModel` covering everything the
        inputs covered, usually with far fewer representatives.
    """
    resolved = get_metric(metric)
    kept_points: list[np.ndarray] = []
    kept_ranges: list[float] = []
    kept_sources: list[Representative] = []
    n_objects = 0
    for model in models:
        n_objects += model.n_objects
        for rep in model.representatives:
            if kept_points:
                distances = resolved.to_many(rep.point, np.asarray(kept_points))
                nearest = int(np.argmin(distances))
                if distances[nearest] <= radius:
                    kept_ranges[nearest] = max(
                        kept_ranges[nearest],
                        float(distances[nearest]) + rep.eps_range,
                    )
                    continue
            kept_points.append(rep.point)
            kept_ranges.append(rep.eps_range)
            kept_sources.append(rep)
    representatives = [
        Representative(
            point=point,
            eps_range=eps_range,
            site_id=source.site_id,
            local_cluster_id=source.local_cluster_id,
        )
        for point, eps_range, source in zip(kept_points, kept_ranges, kept_sources)
    ]
    scheme = models[0].scheme if models else "rep_scor"
    eps_local = models[0].eps_local if models else 0.0
    min_pts = models[0].min_pts_local if models else 0
    return LocalModel(
        site_id=region_id,
        representatives=representatives,
        n_objects=n_objects,
        scheme=scheme,
        eps_local=eps_local,
        min_pts_local=min_pts,
    )


@dataclass
class RegionReport:
    """One regional server's view.

    Attributes:
        region_id: index of the region.
        site_ids: global ids of the sites under this region.
        n_received_representatives: representatives received from sites.
        n_forwarded_representatives: representatives after condensation.
        bytes_up_sites: site → region traffic.
        bytes_up_region: region → top traffic (condensed model).
        n_quarantined_models: site models the regional server's admission
            gate refused (``LocalModel.validate`` problems); they are
            excluded from condensation, like the central server's
            quarantine bucket.
    """

    region_id: int
    site_ids: list[int]
    n_received_representatives: int
    n_forwarded_representatives: int
    bytes_up_sites: int
    bytes_up_region: int
    n_quarantined_models: int = 0


@dataclass
class HierarchicalReport:
    """Outcome of a hierarchical DBDC run.

    Attributes:
        sites: all client sites (flat order; relabeled).
        regions: per-region bookkeeping.
        global_model: the top server's model (broadcast to every site).
        flat_equivalent_bytes: long-haul traffic of a flat topology
            (every site's model crossing the long-haul link).
        long_haul_bytes: long-haul traffic of the hierarchy (one condensed
            model per region).
        network: aggregated statistics of every message the run put on
            the network — ``bytes_by_kind`` splits the traffic into the
            three hops (``local_model`` site→region, ``regional_model``
            region→top, ``global_model`` broadcast).
    """

    sites: list[ClientSite]
    regions: list[RegionReport]
    global_model: GlobalModel
    flat_equivalent_bytes: int
    long_haul_bytes: int
    network: NetworkStats = field(default_factory=NetworkStats)

    @property
    def long_haul_saving(self) -> float:
        """Long-haul traffic as a fraction of the flat topology's."""
        if self.flat_equivalent_bytes == 0:
            return 0.0
        return self.long_haul_bytes / self.flat_equivalent_bytes

    @property
    def n_quarantined_models(self) -> int:
        """Site models refused by regional admission gates, all regions."""
        return sum(region.n_quarantined_models for region in self.regions)

    def labels_per_site(self) -> list[np.ndarray]:
        """Every site's relabeled objects, in site order."""
        return [site.global_labels for site in self.sites]


def run_hierarchical_dbdc(
    region_site_points: list[list[np.ndarray]],
    *,
    eps_local: float,
    min_pts_local: int,
    scheme: str = "rep_scor",
    eps_global: float | None = None,
    condense_radius: float | None = None,
    metric: str | Metric = "euclidean",
    index_kind: str = "auto",
    network: SimulatedNetwork | None = None,
) -> HierarchicalReport:
    """Run DBDC over a two-tier site hierarchy.

    Args:
        region_site_points: per region, the list of its sites' point
            arrays (``region_site_points[r][s]`` is one site's data).
        eps_local: local DBSCAN ``Eps`` (all sites).
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme.
        eps_global: top-level merge radius (``None`` → max ε_r over the
            *condensed* representatives, the paper's default rule).
        condense_radius: regional absorption radius (``None`` →
            ``eps_local``; 0 disables condensation entirely).
        metric: distance metric.
        index_kind: neighbor index kind.
        network: optional pre-configured simulated network.

    Returns:
        A :class:`HierarchicalReport`.

    Raises:
        ValueError: for an empty hierarchy.
    """
    if not region_site_points or not any(region_site_points):
        raise ValueError("at least one region with one site is required")
    resolved = get_metric(metric)
    network = network or SimulatedNetwork()
    if condense_radius is None:
        condense_radius = eps_local

    sites: list[ClientSite] = []
    regions: list[RegionReport] = []
    regional_models: list[LocalModel] = []
    long_haul_bytes = 0
    flat_equivalent_bytes = 0
    site_id = 0
    for region_id, site_points in enumerate(region_site_points):
        site_models: list[LocalModel] = []
        region_site_ids: list[int] = []
        bytes_up_sites = 0
        for points in site_points:
            site = ClientSite(
                site_id,
                np.asarray(points, dtype=float),
                eps_local=eps_local,
                min_pts_local=min_pts_local,
                scheme=scheme,
                metric=resolved,
                index_kind=index_kind,
            )
            model = site.run_local_clustering()
            payload = model.to_bytes()
            # Site → regional server: one short hop (negative ids below
            # SERVER denote regional servers in the traffic log).
            network.send(site.site_id, -(region_id + 2), "local_model", payload)
            bytes_up_sites += len(payload)
            flat_equivalent_bytes += len(payload)
            site_models.append(model)
            region_site_ids.append(site_id)
            sites.append(site)
            site_id += 1

        # Regional admission gate: semantically invalid models never
        # reach condensation (same rule as CentralServer.admit).
        admitted_models = [m for m in site_models if not m.validate()]
        n_quarantined = len(site_models) - len(admitted_models)
        site_models = admitted_models

        if condense_radius > 0:
            condensed = condense_models(
                site_models, condense_radius, region_id=region_id, metric=resolved
            )
        else:
            merged_reps = [
                rep for model in site_models for rep in model.representatives
            ]
            condensed = LocalModel(
                site_id=region_id,
                representatives=merged_reps,
                n_objects=sum(m.n_objects for m in site_models),
                scheme=scheme,
                eps_local=eps_local,
                min_pts_local=min_pts_local,
            )
        payload = condensed.to_bytes()
        network.send(-(region_id + 2), SERVER, "regional_model", payload)
        long_haul_bytes += len(payload)
        regional_models.append(condensed)
        regions.append(
            RegionReport(
                region_id=region_id,
                site_ids=region_site_ids,
                n_received_representatives=sum(len(m) for m in site_models),
                n_forwarded_representatives=len(condensed),
                bytes_up_sites=bytes_up_sites,
                bytes_up_region=len(payload),
                n_quarantined_models=n_quarantined,
            )
        )

    global_model, __stats = build_global_model(
        regional_models,
        eps_global=eps_global,
        metric=resolved,
        index_kind=index_kind,
    )
    payload = global_model.to_bytes()
    for site in sites:
        network.send(SERVER, site.site_id, "global_model", payload)
        site.receive_global_model(global_model)
    return HierarchicalReport(
        sites=sites,
        regions=regions,
        global_model=global_model,
        flat_equivalent_bytes=flat_equivalent_bytes,
        long_haul_bytes=long_haul_bytes,
        network=network.stats(),
    )
