"""Distributed aggregate queries over a relabeled federation (§7).

After the update step, "these updated local client clusterings help the
clients to answer server questions efficiently, e.g. questions such as
'give me all objects on your site which belong to the global cluster
4711'".  This module implements the query layer that sentence implies:

* per-cluster membership retrieval (the paper's literal example),
* distributed aggregates computed from per-site partials — counts,
  centroids, bounding boxes, spreads — without moving raw objects
  (each site ships constant-size partial statistics per cluster),
* a whole-federation summary (`cluster_summary`).

The aggregation pattern is the classic one: sites compute
``(count, sum, sum-of-squares, min, max)`` locally; the server combines
partials associatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE
from repro.distributed.site import ClientSite

__all__ = ["ClusterAggregate", "SitePartial", "FederationQueries"]


@dataclass
class SitePartial:
    """One site's constant-size contribution to a cluster aggregate.

    Attributes:
        site_id: contributing site.
        count: members of the cluster on this site.
        coordinate_sum: per-dimension sum of member coordinates.
        coordinate_sq_sum: per-dimension sum of squared coordinates.
        lower: per-dimension minimum.
        upper: per-dimension maximum.
    """

    site_id: int
    count: int
    coordinate_sum: np.ndarray
    coordinate_sq_sum: np.ndarray
    lower: np.ndarray
    upper: np.ndarray

    @classmethod
    def from_points(cls, site_id: int, points: np.ndarray) -> "SitePartial":
        """Compute the partial for one site's members of a cluster."""
        points = np.asarray(points, dtype=float)
        if points.shape[0] == 0:
            raise ValueError("a partial needs at least one member")
        return cls(
            site_id=site_id,
            count=points.shape[0],
            coordinate_sum=points.sum(axis=0),
            coordinate_sq_sum=(points * points).sum(axis=0),
            lower=points.min(axis=0),
            upper=points.max(axis=0),
        )

    @property
    def n_bytes(self) -> int:
        """Wire size of the partial (what actually travels)."""
        dim = self.coordinate_sum.size
        return 4 + 4 + 4 * dim * 8  # ids + count + four float64 vectors


@dataclass
class ClusterAggregate:
    """Combined statistics of one global cluster across the federation.

    Attributes:
        global_id: the cluster.
        count: total members.
        centroid: federation-wide mean position.
        std: per-dimension standard deviation.
        lower: bounding-box minimum.
        upper: bounding-box maximum.
        per_site_counts: site id → member count.
    """

    global_id: int
    count: int
    centroid: np.ndarray
    std: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    per_site_counts: dict[int, int]

    @classmethod
    def combine(cls, global_id: int, partials: list[SitePartial]) -> "ClusterAggregate":
        """Associatively merge site partials into the aggregate.

        Raises:
            ValueError: with no partials.
        """
        if not partials:
            raise ValueError(f"no partials for global cluster {global_id}")
        count = sum(p.count for p in partials)
        coordinate_sum = np.sum([p.coordinate_sum for p in partials], axis=0)
        sq_sum = np.sum([p.coordinate_sq_sum for p in partials], axis=0)
        centroid = coordinate_sum / count
        variance = np.maximum(0.0, sq_sum / count - centroid**2)
        return cls(
            global_id=global_id,
            count=count,
            centroid=centroid,
            std=np.sqrt(variance),
            lower=np.min([p.lower for p in partials], axis=0),
            upper=np.max([p.upper for p in partials], axis=0),
            per_site_counts={p.site_id: p.count for p in partials},
        )


class FederationQueries:
    """Server-side query interface over relabeled client sites.

    Args:
        sites: client sites that have completed the relabeling step.

    Raises:
        RuntimeError: if any site has not been relabeled yet (surfaced on
            first query).
    """

    def __init__(self, sites: list[ClientSite]) -> None:
        self._sites = sites

    # ------------------------------------------------------------------
    # membership (the paper's literal example)
    # ------------------------------------------------------------------
    def objects_of(self, global_id: int) -> dict[int, np.ndarray]:
        """All members of a global cluster, keyed by site."""
        return {
            site.site_id: site.objects_of_global_cluster(global_id)
            for site in self._sites
        }

    def global_cluster_ids(self) -> np.ndarray:
        """Sorted ids of global clusters with at least one member."""
        ids: set[int] = set()
        for site in self._sites:
            labels = site.global_labels
            ids.update(int(v) for v in np.unique(labels[labels != NOISE]))
        return np.asarray(sorted(ids), dtype=np.intp)

    # ------------------------------------------------------------------
    # aggregates from per-site partials
    # ------------------------------------------------------------------
    def _partials_of(self, global_id: int) -> tuple[list[SitePartial], int]:
        partials = []
        traffic = 0
        for site in self._sites:
            members = site.objects_of_global_cluster(global_id)
            if members.shape[0] == 0:
                continue
            partial = SitePartial.from_points(site.site_id, members)
            partials.append(partial)
            traffic += partial.n_bytes
        return partials, traffic

    def aggregate(self, global_id: int) -> ClusterAggregate:
        """Federation-wide statistics of one global cluster.

        Raises:
            KeyError: if no site holds members of ``global_id``.
        """
        partials, __ = self._partials_of(global_id)
        if not partials:
            raise KeyError(f"no members of global cluster {global_id}")
        return ClusterAggregate.combine(global_id, partials)

    def aggregate_traffic_bytes(self, global_id: int) -> int:
        """Bytes of partials the aggregate moved (vs raw member bytes)."""
        __, traffic = self._partials_of(global_id)
        return traffic

    def cluster_summary(self) -> list[ClusterAggregate]:
        """Aggregates of every non-empty global cluster, by id."""
        return [self.aggregate(int(gid)) for gid in self.global_cluster_ids()]

    def noise_count(self) -> int:
        """Objects that remain noise across the whole federation."""
        return sum(
            int(np.count_nonzero(site.global_labels == NOISE))
            for site in self._sites
        )
