"""A client site: owns local data, clusters it, builds and ships its model.

The site object is deliberately self-contained — it never reads another
site's points, mirroring the paper's architecture where "we abstain from an
additional communication between the various client sites as we assume that
they are independent from each other" (Section 2.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE
from repro.core.local import LocalClusteringOutcome, build_local_model
from repro.core.models import GlobalModel, LocalModel
from repro.core.relabel import RelabelStats, relabel_site
from repro.data.distance import Metric, get_metric

__all__ = ["ClientSite"]


@dataclass
class _SitePhaseTimes:
    """Per-site phase timings, clock-named: ``*_wall_seconds`` is elapsed
    ``perf_counter`` time, ``*_cpu_seconds`` is this-thread CPU time
    (``time.thread_time``) — the two diverge whenever the phase ran in a
    contended worker pool."""

    local_wall_seconds: float = 0.0
    local_cpu_seconds: float = 0.0
    relabel_wall_seconds: float = 0.0
    relabel_cpu_seconds: float = 0.0

    @property
    def local_seconds(self) -> float:
        """Back-compat alias for :attr:`local_wall_seconds`."""
        return self.local_wall_seconds

    @property
    def relabel_seconds(self) -> float:
        """Back-compat alias for :attr:`relabel_wall_seconds`."""
        return self.relabel_wall_seconds


class ClientSite:
    """One client of the DBDC protocol.

    Args:
        site_id: unique site identifier.
        points: the site's objects, shape ``(n, d)``.
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme (``"rep_scor"`` / ``"rep_kmeans"``).
        metric: distance metric.
        index_kind: neighbor index kind.
        relabel_kernel: coverage kernel of the update step (``"auto"`` /
            ``"vectorized"`` / ``"reference"``; bit-identical labels).
    """

    def __init__(
        self,
        site_id: int,
        points: np.ndarray,
        *,
        eps_local: float,
        min_pts_local: int,
        scheme: str = "rep_scor",
        metric: str | Metric = "euclidean",
        index_kind: str = "auto",
        relabel_kernel: str = "auto",
    ) -> None:
        self.site_id = site_id
        self.points = np.asarray(points, dtype=float)
        self.eps_local = float(eps_local)
        self.min_pts_local = int(min_pts_local)
        self.scheme = scheme
        self.metric = get_metric(metric)
        self.index_kind = index_kind
        self.relabel_kernel = relabel_kernel
        self.times = _SitePhaseTimes()
        self.failure: str | None = None
        self._outcome: LocalClusteringOutcome | None = None
        self._global_labels: np.ndarray | None = None
        self._relabel_stats: RelabelStats | None = None

    # ------------------------------------------------------------------
    # protocol steps
    #
    # Each step is split into a side-effect-free ``compute_*`` part and an
    # ``apply_*`` part that stores the result on the site.  The split lets
    # DistributedRunner fan the compute out over worker threads *or worker
    # processes* (where mutations of a pickled copy would be lost) and
    # apply the returned results to the driver's site objects.
    # ------------------------------------------------------------------
    def compute_local_clustering(
        self, *, tracer=None, metrics=None
    ) -> tuple[LocalClusteringOutcome, float, float]:
        """Pure part of steps 1+2: cluster locally, derive the local model.

        Args:
            tracer: optional :class:`~repro.obs.Tracer` receiving the
                ``dbscan`` / ``derive_model`` spans of this site.
            metrics: optional :class:`~repro.obs.MetricsRegistry`.

        Returns:
            ``(outcome, wall_seconds, cpu_seconds)`` — elapsed wall time
            and this-thread CPU time; nothing is stored on the site.
        """
        wall_start = time.perf_counter()
        cpu_start = time.thread_time()
        outcome = build_local_model(
            self.points,
            self.eps_local,
            self.min_pts_local,
            scheme=self.scheme,
            site_id=self.site_id,
            metric=self.metric,
            index_kind=self.index_kind,
            tracer=tracer,
            metrics=metrics,
        )
        return (
            outcome,
            time.perf_counter() - wall_start,
            time.thread_time() - cpu_start,
        )

    def apply_local_outcome(
        self,
        outcome: LocalClusteringOutcome,
        wall_seconds: float,
        cpu_seconds: float = 0.0,
    ) -> LocalModel:
        """Store a local clustering outcome and return the model to ship."""
        self._outcome = outcome
        self.times.local_wall_seconds = wall_seconds
        self.times.local_cpu_seconds = cpu_seconds
        return outcome.model

    def run_local_clustering(self) -> LocalModel:
        """Steps 1+2: cluster locally, derive the local model.

        Returns:
            The :class:`~repro.core.models.LocalModel` to transmit.
        """
        return self.apply_local_outcome(*self.compute_local_clustering())

    def compute_relabel(
        self, model: GlobalModel
    ) -> tuple[np.ndarray, RelabelStats, float, float]:
        """Pure part of step 4: compute global labels for this site.

        Args:
            model: the broadcast global model.

        Returns:
            ``(global_labels, stats, wall_seconds, cpu_seconds)`` —
            nothing is stored.

        Raises:
            RuntimeError: when called before :meth:`run_local_clustering`.
        """
        if self._outcome is None:
            raise RuntimeError("run_local_clustering must run before relabeling")
        wall_start = time.perf_counter()
        cpu_start = time.thread_time()
        global_labels, stats = relabel_site(
            self.points,
            self._outcome.clustering.labels,
            model,
            site_id=self.site_id,
            metric=self.metric,
            kernel=self.relabel_kernel,
        )
        return (
            global_labels,
            stats,
            time.perf_counter() - wall_start,
            time.thread_time() - cpu_start,
        )

    def apply_relabel(
        self,
        global_labels: np.ndarray,
        stats: RelabelStats,
        wall_seconds: float,
        cpu_seconds: float = 0.0,
    ) -> RelabelStats:
        """Store a relabeling result on the site."""
        self._global_labels = global_labels
        self._relabel_stats = stats
        self.times.relabel_wall_seconds = wall_seconds
        self.times.relabel_cpu_seconds = cpu_seconds
        return stats

    def apply_degraded_labels(self, reason: str, *, id_offset: int) -> int:
        """Fall back to local labels after missing the global round.

        The degraded-mode guarantee (see ``docs/fault_model.md``): a site
        that crashed before its local phase has nothing — every object is
        noise; a site that clustered locally but never merged keeps its
        local clusters, renumbered into fresh global ids starting at
        ``id_offset`` so they cannot collide with the global model's ids
        (or another failed site's).  Local noise stays noise either way.

        Args:
            reason: why the site missed the round (recorded on
                :attr:`failure`).
            id_offset: first global cluster id this site may use.

        Returns:
            The next free global cluster id.
        """
        self.failure = reason
        n = self.points.shape[0]
        if self._outcome is None:
            labels = np.full(n, NOISE, dtype=np.intp)
            next_offset = id_offset
        else:
            labels = np.array(
                self._outcome.clustering.labels, dtype=np.intp, copy=True
            )
            clustered = labels >= 0
            n_local = int(labels[clustered].max()) + 1 if clustered.any() else 0
            labels[clustered] += id_offset
            next_offset = id_offset + n_local
        n_noise = int((labels == NOISE).sum())
        self.apply_relabel(
            labels,
            RelabelStats(
                n_objects=n,
                n_covered=0,
                n_noise_promoted=0,
                n_inherited=0,
                n_still_noise=n_noise,
                n_local_clusters_merged=0,
            ),
            0.0,
        )
        return next_offset

    def receive_global_model(self, model: GlobalModel) -> RelabelStats:
        """Step 4: relabel local objects with global cluster ids.

        Args:
            model: the broadcast global model.

        Returns:
            The site's :class:`~repro.core.relabel.RelabelStats`.

        Raises:
            RuntimeError: when called before :meth:`run_local_clustering`.
        """
        return self.apply_relabel(*self.compute_relabel(model))

    # ------------------------------------------------------------------
    # post-protocol queries (Section 7: "give me all objects on your site
    # which belong to the global cluster 4711")
    # ------------------------------------------------------------------
    @property
    def local_outcome(self) -> LocalClusteringOutcome:
        """The site's local clustering (raises before step 1)."""
        if self._outcome is None:
            raise RuntimeError("local clustering has not run yet")
        return self._outcome

    @property
    def global_labels(self) -> np.ndarray:
        """Per-object global labels (raises before step 4)."""
        if self._global_labels is None:
            raise RuntimeError("global model has not been received yet")
        return self._global_labels

    @property
    def relabel_stats(self) -> RelabelStats:
        """Relabeling bookkeeping (raises before step 4)."""
        if self._relabel_stats is None:
            raise RuntimeError("global model has not been received yet")
        return self._relabel_stats

    def objects_of_global_cluster(self, global_id: int) -> np.ndarray:
        """Answer the server's membership query for one global cluster.

        Args:
            global_id: a global cluster id.

        Returns:
            The site's objects belonging to that cluster, shape ``(m, d)``.
        """
        members = np.flatnonzero(self.global_labels == global_id)
        return self.points[members]

    def noise_objects(self) -> np.ndarray:
        """The site's objects that remain noise after the global update."""
        members = np.flatnonzero(self.global_labels == NOISE)
        return self.points[members]
