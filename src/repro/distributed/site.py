"""A client site: owns local data, clusters it, builds and ships its model.

The site object is deliberately self-contained — it never reads another
site's points, mirroring the paper's architecture where "we abstain from an
additional communication between the various client sites as we assume that
they are independent from each other" (Section 2.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE
from repro.core.local import LocalClusteringOutcome, build_local_model
from repro.core.models import GlobalModel, LocalModel
from repro.core.relabel import RelabelStats, relabel_site
from repro.data.distance import Metric, get_metric

__all__ = ["ClientSite"]


@dataclass
class _SitePhaseTimes:
    local_seconds: float = 0.0
    relabel_seconds: float = 0.0


class ClientSite:
    """One client of the DBDC protocol.

    Args:
        site_id: unique site identifier.
        points: the site's objects, shape ``(n, d)``.
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        scheme: local model scheme (``"rep_scor"`` / ``"rep_kmeans"``).
        metric: distance metric.
        index_kind: neighbor index kind.
    """

    def __init__(
        self,
        site_id: int,
        points: np.ndarray,
        *,
        eps_local: float,
        min_pts_local: int,
        scheme: str = "rep_scor",
        metric: str | Metric = "euclidean",
        index_kind: str = "auto",
    ) -> None:
        self.site_id = site_id
        self.points = np.asarray(points, dtype=float)
        self.eps_local = float(eps_local)
        self.min_pts_local = int(min_pts_local)
        self.scheme = scheme
        self.metric = get_metric(metric)
        self.index_kind = index_kind
        self.times = _SitePhaseTimes()
        self._outcome: LocalClusteringOutcome | None = None
        self._global_labels: np.ndarray | None = None
        self._relabel_stats: RelabelStats | None = None

    # ------------------------------------------------------------------
    # protocol steps
    # ------------------------------------------------------------------
    def run_local_clustering(self) -> LocalModel:
        """Steps 1+2: cluster locally, derive the local model.

        Returns:
            The :class:`~repro.core.models.LocalModel` to transmit.
        """
        start = time.perf_counter()
        self._outcome = build_local_model(
            self.points,
            self.eps_local,
            self.min_pts_local,
            scheme=self.scheme,
            site_id=self.site_id,
            metric=self.metric,
            index_kind=self.index_kind,
        )
        self.times.local_seconds = time.perf_counter() - start
        return self._outcome.model

    def receive_global_model(self, model: GlobalModel) -> RelabelStats:
        """Step 4: relabel local objects with global cluster ids.

        Args:
            model: the broadcast global model.

        Returns:
            The site's :class:`~repro.core.relabel.RelabelStats`.

        Raises:
            RuntimeError: when called before :meth:`run_local_clustering`.
        """
        if self._outcome is None:
            raise RuntimeError("run_local_clustering must run before relabeling")
        start = time.perf_counter()
        self._global_labels, self._relabel_stats = relabel_site(
            self.points,
            self._outcome.clustering.labels,
            model,
            site_id=self.site_id,
            metric=self.metric,
        )
        self.times.relabel_seconds = time.perf_counter() - start
        return self._relabel_stats

    # ------------------------------------------------------------------
    # post-protocol queries (Section 7: "give me all objects on your site
    # which belong to the global cluster 4711")
    # ------------------------------------------------------------------
    @property
    def local_outcome(self) -> LocalClusteringOutcome:
        """The site's local clustering (raises before step 1)."""
        if self._outcome is None:
            raise RuntimeError("local clustering has not run yet")
        return self._outcome

    @property
    def global_labels(self) -> np.ndarray:
        """Per-object global labels (raises before step 4)."""
        if self._global_labels is None:
            raise RuntimeError("global model has not been received yet")
        return self._global_labels

    @property
    def relabel_stats(self) -> RelabelStats:
        """Relabeling bookkeeping (raises before step 4)."""
        if self._relabel_stats is None:
            raise RuntimeError("global model has not been received yet")
        return self._relabel_stats

    def objects_of_global_cluster(self, global_id: int) -> np.ndarray:
        """Answer the server's membership query for one global cluster.

        Args:
            global_id: a global cluster id.

        Returns:
            The site's objects belonging to that cluster, shape ``(m, d)``.
        """
        members = np.flatnonzero(self.global_labels == global_id)
        return self.points[members]

    def noise_objects(self) -> np.ndarray:
        """The site's objects that remain noise after the global update."""
        members = np.flatnonzero(self.global_labels == NOISE)
        return self.points[members]
