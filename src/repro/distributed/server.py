"""The central server: collects local models, builds the global model.

Two server flavors are provided:

* :class:`CentralServer` — the paper's mainline: wait for all local models,
  run DBSCAN(``Eps_global``, ``MinPts_global = 2``) over the union of
  representatives once.
* :class:`IncrementalServer` — the extension Section 6 motivates ("the
  incremental version of DBSCAN allows us to start with the construction of
  the global model after the first representatives of any local model come
  in"): representatives are inserted into an incremental DBSCAN as they
  arrive, so a consistent global model is available at any time.
"""

from __future__ import annotations

import time

from repro.clustering.incremental import IncrementalDBSCAN
from repro.core.global_model import (
    MIN_PTS_GLOBAL,
    GlobalClusteringStats,
    build_global_model,
)
from repro.core.models import GlobalModel, LocalModel, Representative
from repro.data.distance import Metric, get_metric

__all__ = ["CentralServer", "IncrementalServer"]


class CentralServer:
    """Batch server: one global clustering after all models arrived.

    The degraded-mode extension adds a *deadline + quorum* admission
    policy: models that arrive (in simulated time) after ``deadline_s``
    are rejected, and :attr:`quorum_met` reports whether enough of the
    ``expected_sites`` made it.  The server always builds the global model
    from whichever models were admitted — the paper's server "clusters
    whatever representatives it receives" — the policy only *classifies*
    the round as degraded or not.  Defaults keep the legacy behavior: no
    deadline, no quorum.

    Args:
        eps_global: merge radius; ``None`` → the paper's default (max ε_r).
        metric: distance metric.
        index_kind: neighbor index for the server-side DBSCAN.
        deadline_s: simulated-time admission deadline (``None`` = never
            reject).
        quorum: minimum fraction of expected sites that must be admitted
            for the round to count as healthy (``0`` = any).
        expected_sites: how many sites should report (``None`` → inferred
            from the models seen, admitted or rejected).
        metrics: optional :class:`~repro.obs.MetricsRegistry`; admission
            decisions and the global build record ``server.*`` metrics.
    """

    def __init__(
        self,
        eps_global: float | None = None,
        *,
        metric: str | Metric = "euclidean",
        index_kind: str = "auto",
        deadline_s: float | None = None,
        quorum: float = 0.0,
        expected_sites: int | None = None,
        metrics=None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        if not 0.0 <= quorum <= 1.0:
            raise ValueError(f"quorum must be in [0, 1], got {quorum}")
        self.eps_global = eps_global
        self.metric = get_metric(metric)
        self.index_kind = index_kind
        self.deadline_s = deadline_s
        self.quorum = quorum
        self.expected_sites = expected_sites
        self.metrics = metrics
        self.local_models: list[LocalModel] = []
        self.rejected_models: list[LocalModel] = []
        # (model, reason) pairs the integrity gate refused — corrupt
        # payloads and semantically invalid models never reach the global
        # DBSCAN; the runner turns them into recovery candidates.
        self.quarantined_models: list[tuple[LocalModel, str]] = []
        # Wall-clock seconds of the global DBSCAN (perf_counter delta).
        self.global_seconds = 0.0
        self._model: GlobalModel | None = None
        self._stats: GlobalClusteringStats | None = None

    def quarantine(self, model: LocalModel, reason: str) -> None:
        """Park a model the integrity gate refused (never merged)."""
        self.quarantined_models.append((model, reason))
        if self.metrics is not None:
            self.metrics.inc("server.models_quarantined")

    def admit(
        self,
        model: LocalModel,
        *,
        arrival_s: float = 0.0,
        checksum_ok: bool = True,
        enforce_deadline: bool = True,
    ) -> str:
        """Run the full admission gate on one local model.

        Order matters: integrity first (a corrupt payload must not count
        as a deadline miss — it is poison regardless of when it arrived),
        then the round deadline.  Admission *at* the deadline succeeds;
        only strictly later arrivals are rejected (``arrival_s >
        deadline_s``, pinned by the round-policy edge-case tests).

        Args:
            model: the site's local model.
            arrival_s: simulated arrival time.
            checksum_ok: whether the transport's CRC check passed.
            enforce_deadline: apply the round deadline (recovery rounds
                run their own per-round deadline and disable this one).

        Returns:
            ``"admitted"``, ``"quarantined"`` or ``"deadline_missed"``.
        """
        if not checksum_ok:
            self.quarantine(model, "checksum_mismatch")
            return "quarantined"
        problems = model.validate()
        if problems:
            self.quarantine(model, "; ".join(problems))
            return "quarantined"
        if (
            enforce_deadline
            and self.deadline_s is not None
            and arrival_s > self.deadline_s
        ):
            self.rejected_models.append(model)
            if self.metrics is not None:
                self.metrics.inc("server.models_rejected")
            return "deadline_missed"
        self.local_models.append(model)
        self._model = None  # a new admission invalidates any built model
        if self.metrics is not None:
            self.metrics.inc("server.models_admitted")
            self.metrics.observe(
                "server.representatives_per_model", len(model.representatives)
            )
        return "admitted"

    def receive_local_model(
        self, model: LocalModel, *, arrival_s: float = 0.0
    ) -> bool:
        """Store a site's local model (any arrival order).

        Args:
            model: the site's local model.
            arrival_s: simulated arrival time, checked against the
                deadline (irrelevant when no deadline is set).

        Returns:
            Whether the model was admitted into the round.
        """
        return self.admit(model, arrival_s=arrival_s) == "admitted"

    @property
    def admitted_site_ids(self) -> list[int]:
        """Sites whose models made the round, in arrival order."""
        return [model.site_id for model in self.local_models]

    @property
    def rejected_site_ids(self) -> list[int]:
        """Sites whose models missed the deadline, in arrival order."""
        return [model.site_id for model in self.rejected_models]

    @property
    def quarantined_site_ids(self) -> list[int]:
        """Sites whose models the integrity gate refused, in arrival order."""
        return [model.site_id for model, __ in self.quarantined_models]

    @property
    def quorum_met(self) -> bool:
        """Whether enough expected sites were admitted."""
        expected = self.expected_sites
        if expected is None:
            expected = len(self.local_models) + len(self.rejected_models)
        if expected == 0:
            return True
        return len(self.local_models) / expected >= self.quorum

    def build(self, *, allow_empty: bool = False) -> GlobalModel:
        """Step 3: cluster the admitted representatives into the global model.

        Args:
            allow_empty: return an empty global model instead of raising
                when no model was admitted (degraded-mode runs where every
                site failed).

        Returns:
            The :class:`~repro.core.models.GlobalModel` to broadcast.

        Raises:
            RuntimeError: when no local model has arrived and
                ``allow_empty`` is false.
        """
        if not self.local_models:
            if not allow_empty:
                raise RuntimeError("no local models received")
            self._model = GlobalModel(
                representatives=[],
                global_labels=[],
                eps_global=float(self.eps_global or 0.0),
            )
            self._stats = None
            self.global_seconds = 0.0
            return self._model
        start = time.perf_counter()
        self._model, self._stats = build_global_model(
            self.local_models,
            eps_global=self.eps_global,
            metric=self.metric,
            index_kind=self.index_kind,
        )
        self.global_seconds = time.perf_counter() - start
        if self.metrics is not None:
            self.metrics.inc("server.builds")
            self.metrics.set("server.representatives", len(self._model))
            self.metrics.set(
                "server.global_build_wall_seconds", self.global_seconds
            )
        return self._model

    @property
    def model(self) -> GlobalModel:
        """The built global model (raises before :meth:`build`)."""
        if self._model is None:
            raise RuntimeError("global model has not been built yet")
        return self._model

    @property
    def stats(self) -> GlobalClusteringStats:
        """Server-side clustering statistics (raises before :meth:`build`)."""
        if self._stats is None:
            raise RuntimeError("global model has not been built yet")
        return self._stats


class IncrementalServer:
    """Streaming server: the global clustering is maintained as
    representatives arrive (incremental DBSCAN under the hood).

    Unlike :class:`CentralServer`, the merge radius must be fixed up front —
    the paper's ε_r-derived default needs all models, a streaming server
    cannot wait for them.  Use ``2·Eps_local`` (the paper's observed
    default) when in doubt.

    Args:
        eps_global: merge radius (required, positive).
        dim: representative dimensionality.
        metric: distance metric.
    """

    def __init__(
        self,
        eps_global: float,
        dim: int,
        *,
        metric: str | Metric = "euclidean",
    ) -> None:
        if eps_global <= 0:
            raise ValueError(f"eps_global must be positive, got {eps_global}")
        self.eps_global = float(eps_global)
        self.metric = get_metric(metric)
        self._incremental = IncrementalDBSCAN(
            eps_global, MIN_PTS_GLOBAL, dim, metric=self.metric
        )
        self._representatives: list[Representative] = []

    def receive_representative(self, rep: Representative) -> None:
        """Insert one representative into the evolving global clustering."""
        self._incremental.insert(rep.point)
        self._representatives.append(rep)

    def receive_local_model(self, model: LocalModel) -> None:
        """Insert all representatives of one local model."""
        for rep in model.representatives:
            self.receive_representative(rep)

    @property
    def n_representatives(self) -> int:
        """Representatives inserted so far."""
        return len(self._representatives)

    def snapshot(self) -> GlobalModel:
        """A consistent global model over everything received so far.

        DBSCAN-noise representatives are promoted to singleton clusters,
        exactly as in the batch server.

        Returns:
            A :class:`~repro.core.models.GlobalModel`.
        """
        labels = self._incremental.labels().copy()
        next_id = int(labels.max()) + 1 if (labels >= 0).any() else 0
        for i, label in enumerate(labels):
            if label < 0:
                labels[i] = next_id
                next_id += 1
        return GlobalModel(
            representatives=list(self._representatives),
            global_labels=labels,
            eps_global=self.eps_global,
            min_pts_global=MIN_PTS_GLOBAL,
        )
