"""Simulated network between client sites and the central server.

The paper's efficiency argument rests on transmission *volume*: "the number
of transmitted representatives is much smaller than the cardinality of the
complete data set".  Real sockets would add nothing to the reproduction, so
this module models the network as an accounting layer:

* every message is measured in serialized bytes,
* an optional bandwidth/latency model converts bytes into simulated
  transfer seconds (so experiments can report what shipping the *raw data*
  would have cost versus shipping the models),
* per-link statistics are kept for reporting.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.faults.integrity import payload_crc32

__all__ = ["LinkSpec", "Message", "NetworkStats", "SimulatedNetwork"]


@dataclass(frozen=True)
class LinkSpec:
    """Bandwidth/latency of one client↔server link.

    Attributes:
        bandwidth_bytes_per_s: link throughput (default ~10 Mbit/s, a 2004
            WAN-ish figure; the *relative* volumes are what matter).
        latency_s: one-way latency per message.
    """

    bandwidth_bytes_per_s: float = 1.25e6
    latency_s: float = 0.05

    def transfer_seconds(self, n_bytes: int) -> float:
        """Simulated seconds to move ``n_bytes`` over this link."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        return self.latency_s + n_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class Message:
    """One transmitted message (metadata only; payloads stay in-process).

    Attributes:
        sender: site id, or ``-1`` for the server.
        receiver: site id, or ``-1`` for the server.
        kind: message tag (``"local_model"``, ``"global_model"``, ...).
        n_bytes: serialized payload size.
        sim_seconds: simulated transfer time under the link spec.
        payload_crc: CRC-32 of the payload as stamped by the *sender* —
            the integrity check receivers verify against the bytes they
            actually got (see the ``corrupt_prob`` fault in
            :mod:`repro.faults.plan`).
    """

    sender: int
    receiver: int
    kind: str
    n_bytes: int
    sim_seconds: float
    payload_crc: int = 0


@dataclass
class NetworkStats:
    """Aggregated traffic statistics.

    Attributes:
        n_messages: messages sent.
        bytes_total: total payload bytes.
        bytes_upstream: client → server bytes.
        bytes_downstream: server → client bytes.
        sim_seconds_total: total simulated transfer time (sequential sum).
        bytes_by_kind: payload bytes per message ``kind`` (e.g.
            ``"local_model"`` vs ``"global_model"``), so reports can show
            where the traffic actually goes.
    """

    n_messages: int = 0
    bytes_total: int = 0
    bytes_upstream: int = 0
    bytes_downstream: int = 0
    sim_seconds_total: float = 0.0
    bytes_by_kind: dict[str, int] = field(default_factory=dict)


SERVER = -1


class SimulatedNetwork:
    """Byte- and time-accounting message channel.

    Args:
        link: link spec shared by all client↔server connections.
    """

    def __init__(self, link: LinkSpec | None = None) -> None:
        self.link = link or LinkSpec()
        self.messages: list[Message] = []
        # Sites may send from worker threads (parallel local phase); the
        # log append must not race.
        self._lock = threading.Lock()

    def send(self, sender: int, receiver: int, kind: str, payload: bytes) -> Message:
        """Record a message and return its metadata (thread-safe).

        Args:
            sender: site id or :data:`SERVER`.
            receiver: site id or :data:`SERVER`.
            kind: message tag.
            payload: serialized content (only its length is kept).

        Returns:
            The recorded :class:`Message`.
        """
        message = Message(
            sender=sender,
            receiver=receiver,
            kind=kind,
            n_bytes=len(payload),
            sim_seconds=self.link.transfer_seconds(len(payload)),
            payload_crc=payload_crc32(payload),
        )
        with self._lock:
            self.messages.append(message)
        return message

    def stats(self) -> NetworkStats:
        """Aggregate statistics over all recorded messages."""
        stats = NetworkStats()
        with self._lock:
            messages = list(self.messages)
        for message in messages:
            stats.n_messages += 1
            stats.bytes_total += message.n_bytes
            stats.sim_seconds_total += message.sim_seconds
            stats.bytes_by_kind[message.kind] = (
                stats.bytes_by_kind.get(message.kind, 0) + message.n_bytes
            )
            if message.receiver == SERVER:
                stats.bytes_upstream += message.n_bytes
            else:
                stats.bytes_downstream += message.n_bytes
        return stats

    def raw_data_cost(self, n_objects: int, dim: int) -> tuple[int, float]:
        """What shipping the raw data centrally would cost on this link.

        Args:
            n_objects: objects across all sites.
            dim: coordinate dimensionality.

        Returns:
            ``(bytes, simulated seconds)`` assuming float64 coordinates —
            the baseline the paper's "low transmission cost" claim is
            measured against.
        """
        n_bytes = n_objects * dim * 8
        return n_bytes, self.link.transfer_seconds(n_bytes)
