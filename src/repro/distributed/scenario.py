"""Multi-round streaming simulation: evolving sites, lazy resynchronization.

This composes the two incremental extensions the paper motivates into a
complete running system:

* every client site maintains its clustering incrementally as objects
  arrive/depart (§4: the incremental DBSCAN argument),
* a site re-transmits its local model only when it drifted "considerably"
  (§4), and
* the server rebuilds the global model from the latest models and
  broadcasts it, so all sites stay relabeled (§6/§7).

:class:`StreamingScenario` drives rounds of arrivals and departures and
records, per round, how many sites actually re-transmitted, the traffic
spent, and the size of the global model — the numbers that show why the
lazy policy matters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.global_model import build_global_model
from repro.core.models import GlobalModel, LocalModel
from repro.data.distance import Metric, get_metric
from repro.distributed.incremental_site import IncrementalClientSite
from repro.distributed.network import SERVER, SimulatedNetwork
from repro.faults.transport import ResilientTransport

__all__ = ["RoundStats", "StreamingScenario"]


@dataclass(frozen=True)
class RoundStats:
    """Bookkeeping of one scenario round.

    Attributes:
        round_index: 0-based round number.
        arrivals: objects inserted this round (across sites).
        departures: objects removed this round.
        sites_transmitted: sites whose fresh model reached the server.
        bytes_up: model bytes put on the upstream wire this round
            (includes failed/retried attempts when a transport is used).
        n_global_clusters: clusters in the refreshed global model.
        n_representatives: representatives in the refreshed global model.
        sites_failed: sites whose upload was lost this round (they retry
            next round; the server keeps their stale model meanwhile).
    """

    round_index: int
    arrivals: int
    departures: int
    sites_transmitted: int
    bytes_up: int
    n_global_clusters: int
    n_representatives: int
    sites_failed: int = 0


class StreamingScenario:
    """Drive incremental sites and a lazily-refreshed global model.

    Args:
        n_sites: number of client sites.
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        dim: object dimensionality.
        eps_global: server merge radius (``None`` → ``2·eps_local``, the
            paper's observed default — a streaming server cannot wait for
            all ε_r values).
        drift_threshold: per-site retransmission threshold.
        metric: distance metric.
        network: optional pre-configured simulated network.
        transport: optional fault-injecting transport (built over this
            scenario's network); when a site's upload is lost despite the
            retries, the server reuses the site's stale model and the
            site re-transmits on the next round.
    """

    def __init__(
        self,
        n_sites: int,
        *,
        eps_local: float,
        min_pts_local: int,
        dim: int = 2,
        eps_global: float | None = None,
        drift_threshold: float = 0.2,
        metric: str | Metric = "euclidean",
        network: SimulatedNetwork | None = None,
        transport: ResilientTransport | None = None,
    ) -> None:
        if n_sites < 1:
            raise ValueError(f"n_sites must be >= 1, got {n_sites}")
        self.metric = get_metric(metric)
        self.eps_global = (
            float(eps_global) if eps_global is not None else 2.0 * eps_local
        )
        self.network = network or SimulatedNetwork()
        if transport is not None and transport.network is not self.network:
            raise ValueError(
                "transport must wrap this scenario's network "
                "(pass the same SimulatedNetwork to both)"
            )
        self.transport = transport
        self._retry_pending: set[int] = set()
        self.sites = [
            IncrementalClientSite(
                site_id,
                eps_local=eps_local,
                min_pts_local=min_pts_local,
                dim=dim,
                metric=self.metric,
                drift_threshold=drift_threshold,
            )
            for site_id in range(n_sites)
        ]
        self._latest_models: dict[int, LocalModel] = {}
        self._global_model: GlobalModel | None = None
        self.history: list[RoundStats] = []

    @property
    def global_model(self) -> GlobalModel:
        """The current global model (raises before the first round)."""
        if self._global_model is None:
            raise RuntimeError("no round has run yet")
        return self._global_model

    def run_round(
        self,
        arrivals: list[np.ndarray],
        departures: list[list[int]] | None = None,
    ) -> RoundStats:
        """Execute one round: mutate the sites, resync lazily, rebuild.

        Args:
            arrivals: per site, an array of new objects (may be empty).
            departures: per site, stable object ids to remove.

        Returns:
            The round's :class:`RoundStats`.

        Raises:
            ValueError: when the per-site lists do not match ``n_sites``.
        """
        if len(arrivals) != len(self.sites):
            raise ValueError(
                f"expected {len(self.sites)} arrival arrays, got {len(arrivals)}"
            )
        if departures is None:
            departures = [[] for __ in self.sites]
        if len(departures) != len(self.sites):
            raise ValueError(
                f"expected {len(self.sites)} departure lists, got {len(departures)}"
            )

        n_arrived = 0
        n_departed = 0
        for site, new_points, leaving in zip(self.sites, arrivals, departures):
            new_points = np.asarray(new_points, dtype=float)
            if new_points.size:
                site.add_objects(new_points)
                n_arrived += new_points.shape[0]
            for object_id in leaving:
                site.remove_object(object_id)
                n_departed += 1

        # Lazy resync: only drifted sites upload a fresh model (plus sites
        # whose previous upload was lost and must retry).
        bytes_up = 0
        transmitted = 0
        failed = 0
        for site in self.sites:
            model = site.maybe_transmit()
            if model is None:
                if site.site_id not in self._retry_pending:
                    continue
                model = site.current_model()
            payload = model.to_bytes()
            if self.transport is None:
                message = self.network.send(
                    site.site_id, SERVER, "local_model", payload
                )
                bytes_up += message.n_bytes
                delivered = True
            else:
                outcome = self.transport.deliver(
                    site.site_id, SERVER, "local_model", payload
                )
                bytes_up += outcome.bytes_sent
                # A delivered-but-corrupt payload is useless to the
                # server: treat it as a failed upload and retry next
                # round, exactly like a lost one.
                delivered = outcome.delivered and outcome.checksum_ok
            if delivered:
                transmitted += 1
                self._latest_models[site.site_id] = model
                self._retry_pending.discard(site.site_id)
            else:
                failed += 1
                self._retry_pending.add(site.site_id)

        self._global_model, __ = build_global_model(
            list(self._latest_models.values()),
            eps_global=self.eps_global,
            metric=self.metric,
        )
        stats = RoundStats(
            round_index=len(self.history),
            arrivals=n_arrived,
            departures=n_departed,
            sites_transmitted=transmitted,
            bytes_up=bytes_up,
            n_global_clusters=self._global_model.n_global_clusters,
            n_representatives=len(self._global_model),
            sites_failed=failed,
        )
        self.history.append(stats)
        return stats

    def total_bytes_up(self) -> int:
        """Total model bytes uploaded across all rounds."""
        return sum(stats.bytes_up for stats in self.history)

    def eager_bytes_up(self) -> int:
        """What an *eager* policy (every site, every round) would have
        uploaded, estimated with the current model sizes."""
        per_round = sum(
            len(site.current_model().to_bytes()) for site in self.sites
        )
        return per_round * max(1, len(self.history))
