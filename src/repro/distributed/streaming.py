"""In-process reference for multi-round streaming sessions.

:func:`run_streaming_session` is the oracle the service-mode streaming
tests pin against: N sequential incremental rounds run entirely in
process, through exactly the code path the live service uses — round 0
via the standard sorted :class:`~repro.distributed.server.CentralServer`
build, every later round folded into the session model by
:class:`~repro.core.global_model.GlobalModelRepairer`.  A socket session
over :func:`~repro.service.worker.run_site_worker_session` must produce
bit-identical labels.

Each round's batches are clustered under *effective* site ids
``site_id + round_index * n_sites``, which keeps the
``(site_id, local_cluster_id)`` inheritance keys of the relabel step
collision-free across rounds — the same contract the service enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.global_model import GlobalModelRepairer
from repro.core.models import GlobalModel
from repro.distributed.server import CentralServer
from repro.distributed.site import ClientSite

__all__ = ["StreamingResult", "run_streaming_session"]


@dataclass
class StreamingResult:
    """Outcome of one in-process streaming session.

    Attributes:
        model: the final session global model.
        labels: ``labels[r][i]`` — global labels of site ``i``'s round-r
            batch under the final model.
        n_rounds: rounds run.
        n_sites: sites per round.
        n_repairs: incremental model repairs performed (rounds beyond
            the first contribute one per admitted model).
    """

    model: GlobalModel
    labels: list = field(default_factory=list)
    n_rounds: int = 0
    n_sites: int = 0
    n_repairs: int = 0


def run_streaming_session(
    batches: list,
    *,
    eps_local: float,
    min_pts_local: int,
    eps_global: float | None = None,
    scheme: str = "rep_scor",
    metric: str = "euclidean",
    index_kind: str = "auto",
    relabel_kernel: str = "auto",
) -> StreamingResult:
    """Run N sequential incremental rounds entirely in process.

    Args:
        batches: ``batches[r][i]`` is site ``i``'s round-r point array,
            shape ``(n, d)``; every round must list the same number of
            sites.
        eps_local: local DBSCAN ``Eps``.
        min_pts_local: local DBSCAN ``MinPts``.
        eps_global: server merge radius (``None`` → the paper default,
            frozen at the round-0 value for all later rounds).
        scheme: local model scheme.
        metric: distance metric.
        index_kind: neighbor index kind.
        relabel_kernel: coverage kernel for the update step.

    Returns:
        A :class:`StreamingResult` with the final model and per-batch
        labels under it.
    """
    if not batches:
        raise ValueError("need at least one round of batches")
    n_sites = len(batches[0])
    if n_sites == 0:
        raise ValueError("need at least one site per round")
    for round_index, round_batches in enumerate(batches):
        if len(round_batches) != n_sites:
            raise ValueError(
                f"round {round_index} has {len(round_batches)} batches, "
                f"expected {n_sites}"
            )

    sites: list[list[ClientSite]] = []
    model: GlobalModel | None = None
    repairer: GlobalModelRepairer | None = None
    n_repairs = 0
    for round_index, round_batches in enumerate(batches):
        round_sites = [
            ClientSite(
                site_index + round_index * n_sites,
                np.asarray(batch, dtype=float),
                eps_local=eps_local,
                min_pts_local=min_pts_local,
                scheme=scheme,
                metric=metric,
                index_kind=index_kind,
                relabel_kernel=relabel_kernel,
            )
            for site_index, batch in enumerate(round_batches)
        ]
        models = [site.run_local_clustering() for site in round_sites]
        models.sort(key=lambda local_model: local_model.site_id)
        if repairer is None:
            # Round 0: the one-shot sorted build, exactly as the service
            # (and a single-round deployment) runs it.
            server = CentralServer(
                eps_global, metric=metric, index_kind=index_kind
            )
            for local_model in models:
                server.admit(local_model)
            server.local_models.sort(
                key=lambda local_model: local_model.site_id
            )
            server.build(allow_empty=True)
            model = server.model
            repairer = GlobalModelRepairer(model, metric=metric)
        else:
            for local_model in models:
                model, __ = repairer.add_model(local_model)
                n_repairs += 1
        sites.append(round_sites)
        # True streaming: every batch seen so far is relabeled against
        # the round's committed model.
        for earlier in sites:
            for site in earlier:
                site.receive_global_model(model)

    assert model is not None
    return StreamingResult(
        model=model,
        labels=[
            [site.global_labels for site in round_sites]
            for round_sites in sites
        ],
        n_rounds=len(batches),
        n_sites=n_sites,
        n_repairs=n_repairs,
    )
