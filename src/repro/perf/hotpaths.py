"""Hot-path benchmark: single vs. batched vs. parallel execution.

Times the three layers this repository's performance work targets and
writes a machine-readable ``BENCH_hotpaths.json`` so successive PRs can
track the trajectory:

* **region queries** — a fixed batch of ``region_query`` calls answered one
  at a time vs. one ``region_query_batch`` call, per index kind;
* **DBSCAN** — the classic one-query-per-seed loop (``batched=False``) vs.
  the frontier-at-a-time expansion (``batched=True``), per index kind, with
  a sanity check that both produce identical labels and query counts;
* **the distributed local phase** — ``DistributedRunner`` with
  ``parallelism=1`` vs. ``parallelism=N`` (thread and process backends),
  comparing the wall clock of the "conceptually parallel" Figure 2 local
  phase.  Note that on a single-CPU machine the parallel variants cannot
  beat sequential; the report records ``cpu_count`` so readers can judge.

Run it via ``python -m repro.cli bench`` or directly::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py --cardinality 20000
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable

import numpy as np

from repro.clustering.dbscan import DBSCAN
from repro.data.datasets import dataset_a
from repro.distributed.runner import DistributedRunConfig, DistributedRunner
from repro.index import build_index
from repro.obs import MetricsRegistry, Tracer, phase_totals
from repro.obs.registry import run_environment, utc_now_iso

__all__ = [
    "run_hotpath_bench",
    "flat_metrics",
    "record_bench_run",
    "write_report",
    "format_summary",
    "main",
]

DEFAULT_REPORT_PATH = "BENCH_hotpaths.json"


def _best_of(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of ``fn`` plus its (last) result."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_region_queries(
    points: np.ndarray,
    eps: float,
    *,
    kinds: tuple[str, ...] = ("brute", "grid", "kdtree"),
    n_queries: int = 2000,
    repeats: int = 1,
    seed: int = 0,
) -> dict:
    """Per-query vs. batched region-query throughput per index kind."""
    rng = np.random.default_rng(seed)
    indices = rng.choice(points.shape[0], size=min(n_queries, points.shape[0]), replace=False)
    indices = np.sort(indices).astype(np.intp)
    out: dict = {}
    for kind in kinds:
        index = build_index(points, kind, eps=eps)

        def per_query():
            return [index.region_query(int(i), eps) for i in indices]

        def batched():
            return index.region_query_batch(indices, eps)

        single_seconds, single_result = _best_of(per_query, repeats)
        batch_seconds, batch_result = _best_of(batched, repeats)
        assert all(
            np.array_equal(a, b) for a, b in zip(single_result, batch_result)
        ), f"batched {kind} region queries diverged from per-query results"
        out[kind] = {
            "n_queries": int(indices.size),
            "single_seconds": single_seconds,
            "batched_seconds": batch_seconds,
            "speedup": single_seconds / batch_seconds if batch_seconds > 0 else None,
        }
    return out


def bench_dbscan(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    kinds: tuple[str, ...] = ("brute", "grid", "kdtree"),
    repeats: int = 1,
) -> dict:
    """Classic vs. frontier-batched DBSCAN, per index kind."""
    out: dict = {}
    for kind in kinds:
        index = build_index(points, kind, eps=eps)
        single = DBSCAN(eps, min_pts, batched=False)
        frontier = DBSCAN(eps, min_pts, batched=True)
        single_seconds, single_result = _best_of(
            lambda: single.fit(points, index=index), repeats
        )
        batch_seconds, batch_result = _best_of(
            lambda: frontier.fit(points, index=index), repeats
        )
        assert np.array_equal(single_result.labels, batch_result.labels)
        assert np.array_equal(single_result.core_mask, batch_result.core_mask)
        assert single_result.n_region_queries == batch_result.n_region_queries
        out[kind] = {
            "single_seconds": single_seconds,
            "batched_seconds": batch_seconds,
            "speedup": single_seconds / batch_seconds if batch_seconds > 0 else None,
            "n_clusters": single_result.n_clusters,
            "n_region_queries": single_result.n_region_queries,
        }
    return out


def bench_local_phase(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    n_sites: int = 4,
    parallelism: int = 4,
    seed: int = 42,
) -> dict:
    """Sequential vs. parallel distributed local phase (threads/processes)."""
    variants = {
        "sequential": {"parallelism": 1, "parallel_backend": "thread"},
        f"thread_x{parallelism}": {
            "parallelism": parallelism,
            "parallel_backend": "thread",
        },
        f"process_x{parallelism}": {
            "parallelism": parallelism,
            "parallel_backend": "process",
        },
    }
    out: dict = {"n_sites": n_sites}
    for name, overrides in variants.items():
        config = DistributedRunConfig(
            eps_local=eps, min_pts_local=min_pts, seed=seed, **overrides
        )
        # Tracing is on so the report breaks each variant down per phase;
        # timing fields and trace spans come from the same clock reads.
        report = DistributedRunner(
            config, tracer=Tracer(), metrics=MetricsRegistry()
        ).run(points, n_sites)
        totals = phase_totals(report.trace)
        out[name] = {
            "local_wall_seconds": report.local_wall_seconds,
            "local_cpu_seconds": report.local_cpu_seconds,
            "relabel_wall_seconds": report.relabel_wall_seconds,
            "max_local_wall_seconds": report.max_local_wall_seconds,
            "n_global_clusters": len(
                set(int(g) for g in report.global_model.global_labels)
            ),
            "phase_wall_seconds": {
                phase: totals[phase]["wall_seconds"]
                for phase in (
                    "local_phase",
                    "global_phase",
                    "broadcast",
                    "relabel",
                )
                if phase in totals
            },
        }
    sequential = out["sequential"]["local_wall_seconds"]
    for name in variants:
        if name != "sequential":
            wall = out[name]["local_wall_seconds"]
            out[name]["speedup_vs_sequential"] = (
                sequential / wall if wall > 0 else None
            )
    return out


def run_hotpath_bench(
    *,
    cardinality: int = 20_000,
    n_sites: int = 4,
    parallelism: int = 4,
    repeats: int = 1,
    seed: int = 42,
    kinds: tuple[str, ...] = ("brute", "grid", "kdtree"),
) -> dict:
    """Run all hot-path benchmarks on data set A and return the report."""
    data = dataset_a(cardinality=cardinality, seed=seed)
    points, eps, min_pts = data.points, data.eps_local, data.min_pts
    environment = run_environment()
    return {
        "bench": "hotpaths",
        # Provenance rides in every report (shared RunRecord helper), so
        # trajectory comparisons across machines/checkouts stay meaningful.
        "meta": {
            "cardinality": int(points.shape[0]),
            "dim": int(points.shape[1]),
            "eps": float(eps),
            "min_pts": int(min_pts),
            "repeats": int(repeats),
            "seed": int(seed),
            "created_utc": utc_now_iso(),
            "git_rev": environment["git_rev"],
            "git_dirty": environment["git_dirty"],
            "cpu_count": environment["cpu_count"],
            "python": environment["python"],
            "numpy": environment["numpy"],
            "platform": environment["platform"],
        },
        "region_queries": bench_region_queries(
            points, eps, kinds=kinds, repeats=repeats, seed=seed
        ),
        "dbscan": bench_dbscan(points, eps, min_pts, kinds=kinds, repeats=repeats),
        "local_phase": bench_local_phase(
            points, eps, min_pts, n_sites=n_sites, parallelism=parallelism, seed=seed
        ),
    }


def flat_metrics(report: dict) -> dict[str, float]:
    """Flatten a hot-path report into RunRecord metrics.

    Per-kind numbers keep the kind in brackets
    (``"dbscan.speedup[grid]"``) per the :mod:`repro.obs` name contract;
    the regression gate treats ``*speedup*`` as higher-is-better and
    ``*seconds*`` as lower-is-better.
    """
    out: dict[str, float] = {}
    for kind, row in report["region_queries"].items():
        out[f"region_queries.single_seconds[{kind}]"] = row["single_seconds"]
        out[f"region_queries.batched_seconds[{kind}]"] = row["batched_seconds"]
        if row["speedup"] is not None:
            out[f"region_queries.speedup[{kind}]"] = row["speedup"]
    for kind, row in report["dbscan"].items():
        out[f"dbscan.single_seconds[{kind}]"] = row["single_seconds"]
        out[f"dbscan.batched_seconds[{kind}]"] = row["batched_seconds"]
        if row["speedup"] is not None:
            out[f"dbscan.speedup[{kind}]"] = row["speedup"]
        out[f"dbscan.clusters_count[{kind}]"] = row["n_clusters"]
        out[f"dbscan.region_queries_count[{kind}]"] = row["n_region_queries"]
    for name, row in report["local_phase"].items():
        if name == "n_sites":
            continue
        out[f"local_phase.wall_seconds[{name}]"] = row["local_wall_seconds"]
        out[f"local_phase.cpu_seconds[{name}]"] = row["local_cpu_seconds"]
        if "speedup_vs_sequential" in row and row["speedup_vs_sequential"]:
            out[f"local_phase.speedup[{name}]"] = row["speedup_vs_sequential"]
    return out


def write_report(report: dict, path: str = DEFAULT_REPORT_PATH) -> str:
    """Write the benchmark report as pretty-printed JSON (makes parent dirs)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(report: dict) -> str:
    """Human-readable summary of a hot-path benchmark report."""
    lines = [
        f"hot paths @ n={report['meta']['cardinality']} "
        f"(cpus={report['meta']['cpu_count']})"
    ]
    lines.append("region queries (single -> batched):")
    for kind, row in report["region_queries"].items():
        lines.append(
            f"  {kind:7s} {row['single_seconds']:.3f}s -> "
            f"{row['batched_seconds']:.3f}s  ({row['speedup']:.2f}x)"
        )
    lines.append("DBSCAN (classic -> frontier-batched):")
    for kind, row in report["dbscan"].items():
        lines.append(
            f"  {kind:7s} {row['single_seconds']:.3f}s -> "
            f"{row['batched_seconds']:.3f}s  ({row['speedup']:.2f}x, "
            f"{row['n_region_queries']} queries)"
        )
    lines.append(
        f"local phase over {report['local_phase']['n_sites']} sites "
        f"(wall seconds):"
    )
    for name, row in report["local_phase"].items():
        if name == "n_sites":
            continue
        extra = ""
        if "speedup_vs_sequential" in row:
            extra = f"  ({row['speedup_vs_sequential']:.2f}x vs sequential)"
        lines.append(f"  {name:12s} {row['local_wall_seconds']:.3f}s{extra}")
    return "\n".join(lines)


def record_bench_run(report: dict, registry_root: str) -> dict:
    """Append one hot-path report to the run registry.

    The registry holds the durable history; the top-level
    ``BENCH_hotpaths.json`` is just the generated "latest" view.  The
    record's run id is stamped back into ``report["meta"]["run_id"]`` so
    the latest view points at its registry entry.
    """
    from repro.obs.registry import RunRegistry

    meta = report["meta"]
    record = RunRegistry(registry_root).record(
        "bench",
        config={
            key: meta[key]
            for key in ("cardinality", "dim", "eps", "min_pts", "repeats", "seed")
        },
        metrics=flat_metrics(report),
        artifacts={"BENCH_hotpaths.json": report},
    )
    meta["run_id"] = record["run_id"]
    return record


def main(argv: list[str] | None = None) -> int:
    """Stand-alone entry point (also reachable as ``repro.cli bench``)."""
    parser = argparse.ArgumentParser(description="DBDC hot-path benchmarks")
    parser.add_argument("--cardinality", type=int, default=20_000)
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--parallelism", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default=DEFAULT_REPORT_PATH)
    parser.add_argument("--registry", default=".runs")
    parser.add_argument("--no-registry", action="store_true")
    args = parser.parse_args(argv)
    report = run_hotpath_bench(
        cardinality=args.cardinality,
        n_sites=args.sites,
        parallelism=args.parallelism,
        repeats=args.repeats,
        seed=args.seed,
    )
    print(format_summary(report))
    if not args.no_registry:
        try:
            record = record_bench_run(report, args.registry)
        except Exception as error:  # never fail the run over bookkeeping
            print(f"warning: could not record run: {error}", file=sys.stderr)
        else:
            print(f"recorded {record['run_id']} in {args.registry}")
    path = write_report(report, args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
