"""Hot-path benchmark: single vs. batched vs. parallel execution, at scale.

Times the layers this repository's performance work targets and writes a
machine-readable ``BENCH_hotpaths.json`` so successive PRs can track the
trajectory:

* **region queries** — a fixed batch of ``region_query`` calls answered one
  at a time vs. one ``region_query_batch`` call, per index kind;
* **DBSCAN** — the classic one-query-per-seed loop (``batched=False``) vs.
  the frontier-at-a-time expansion (``batched=True``), per index kind, with
  a sanity check that both produce identical labels and query counts;
* **the distributed local phase** — ``DistributedRunner`` with
  ``parallelism=1`` vs. ``parallelism=N`` (thread and process backends).
  Each variant records the *effective* worker count after the runner's
  auto-fallback — on a single-CPU box, or with sites below the fallback
  threshold, a parallel config legitimately runs sequentially;
* **relabel kernels** — the dense ``relabel_site_reference`` sweep vs. the
  vectorized grid-backed kernel over the same sites and global model,
  asserting bit-identical labels and stats (``labels_identical`` rides into
  the registry as a zero-tolerance correctness metric);
* **the shared-memory pool** — share / zero-copy attach / verify / unlink
  round-trip of the per-site arrays, with the byte volume that the process
  backend no longer pickles;
* **scale sweep** — ``--cardinality`` accepts a comma-separated list (the
  first entry is the primary cardinality the classic sections run at); every
  entry gets a full generate → partition → local → global → relabel
  pipeline with a per-phase memory budget: wall seconds, ``tracemalloc``
  peak (python-visible allocations, numpy buffers included) and
  ``ru_maxrss`` (the process' monotone RSS high-water mark).  This is the
  section that makes 10^6-point runs honest: phase walls *and* peak memory,
  not just an end-to-end number.  Note the tracemalloc hooks add their own
  overhead, so sweep walls are upper bounds — the classic sections stay
  unprobed for clean comparisons.

Run it via ``python -m repro.cli bench`` or directly::

    PYTHONPATH=src python benchmarks/bench_hotpaths.py --cardinality 20000
    PYTHONPATH=src python benchmarks/bench_hotpaths.py \
        --cardinality 20000,200000,1000000

The report refuses to pretend provenance it does not have: a dirty git
tree produces a loud warning (or a hard error under ``--strict-git``),
because numbers recorded against a stale revision are worse than no
numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
import tracemalloc
from typing import Callable, Sequence

import numpy as np

from repro.clustering.dbscan import DBSCAN
from repro.core.global_model import build_global_model
from repro.core.local import build_local_model
from repro.core.relabel import relabel_site
from repro.core.shm import ShmArrayPool, attach_array
from repro.data.datasets import dataset_a
from repro.distributed.partition import partition, split
from repro.distributed.runner import DistributedRunConfig, DistributedRunner
from repro.index import build_index
from repro.obs import MetricsRegistry, Tracer, phase_totals
from repro.obs.registry import run_environment, utc_now_iso

__all__ = [
    "run_hotpath_bench",
    "bench_relabel_kernels",
    "bench_shm_pool",
    "bench_scale_pipeline",
    "flat_metrics",
    "record_bench_run",
    "write_report",
    "format_summary",
    "main",
]

DEFAULT_REPORT_PATH = "BENCH_hotpaths.json"

#: Largest primary cardinality the classic cross-kind sections run at —
#: the brute-force index and the one-query-per-seed DBSCAN loop are
#: quadratic-ish and pointless to "benchmark" at 10^6.
_CLASSIC_MAX = 50_000
#: Largest primary cardinality the relabel-kernel oracle comparison runs
#: at (it executes the dense O(n·m) reference sweep on purpose).
_KERNELS_MAX = 200_000


def _best_of(fn: Callable[[], object], repeats: int) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of ``fn`` plus its (last) result."""
    best = float("inf")
    result: object = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _probe(fn: Callable[[], object]) -> tuple[object, dict]:
    """Run ``fn`` under the per-phase memory budget probe.

    Returns ``(result, budget)`` where the budget holds the phase's wall
    seconds (including the tracemalloc hook overhead), the ``tracemalloc``
    peak over the phase and the process RSS high-water mark *after* the
    phase (``ru_maxrss`` is monotone — it never goes down, so per-phase
    values are a running maximum, not per-phase deltas).
    """
    tracemalloc.start()
    wall_start = time.perf_counter()
    result = fn()
    wall_seconds = time.perf_counter() - wall_start
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return result, {
        "wall_seconds": wall_seconds,
        "tracemalloc_peak_mb": traced_peak / 2**20,
        "rss_peak_mb": rss_kb / 1024.0,
    }


def bench_region_queries(
    points: np.ndarray,
    eps: float,
    *,
    kinds: tuple[str, ...] = ("brute", "grid", "kdtree"),
    n_queries: int = 2000,
    repeats: int = 1,
    seed: int = 0,
) -> dict:
    """Per-query vs. batched region-query throughput per index kind."""
    rng = np.random.default_rng(seed)
    indices = rng.choice(points.shape[0], size=min(n_queries, points.shape[0]), replace=False)
    indices = np.sort(indices).astype(np.intp)
    out: dict = {}
    for kind in kinds:
        index = build_index(points, kind, eps=eps)

        def per_query():
            return [index.region_query(int(i), eps) for i in indices]

        def batched():
            return index.region_query_batch(indices, eps)

        single_seconds, single_result = _best_of(per_query, repeats)
        batch_seconds, batch_result = _best_of(batched, repeats)
        assert all(
            np.array_equal(a, b) for a, b in zip(single_result, batch_result)
        ), f"batched {kind} region queries diverged from per-query results"
        out[kind] = {
            "n_queries": int(indices.size),
            "single_seconds": single_seconds,
            "batched_seconds": batch_seconds,
            "speedup": single_seconds / batch_seconds if batch_seconds > 0 else None,
        }
    return out


def bench_dbscan(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    kinds: tuple[str, ...] = ("brute", "grid", "kdtree"),
    repeats: int = 1,
) -> dict:
    """Classic vs. frontier-batched DBSCAN, per index kind."""
    out: dict = {}
    for kind in kinds:
        index = build_index(points, kind, eps=eps)
        single = DBSCAN(eps, min_pts, batched=False)
        frontier = DBSCAN(eps, min_pts, batched=True)
        single_seconds, single_result = _best_of(
            lambda: single.fit(points, index=index), repeats
        )
        batch_seconds, batch_result = _best_of(
            lambda: frontier.fit(points, index=index), repeats
        )
        assert np.array_equal(single_result.labels, batch_result.labels)
        assert np.array_equal(single_result.core_mask, batch_result.core_mask)
        assert single_result.n_region_queries == batch_result.n_region_queries
        out[kind] = {
            "single_seconds": single_seconds,
            "batched_seconds": batch_seconds,
            "speedup": single_seconds / batch_seconds if batch_seconds > 0 else None,
            "n_clusters": single_result.n_clusters,
            "n_region_queries": single_result.n_region_queries,
        }
    return out


def bench_local_phase(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    n_sites: int = 4,
    parallelism: int = 4,
    seed: int = 42,
) -> dict:
    """Sequential vs. parallel distributed local phase (threads/processes).

    Each parallel variant reports its post-fallback ``effective_workers``
    — a row whose effective workers collapsed to 1 measured the runner's
    auto-fallback decision, not a worker pool.
    """
    variants = {
        "sequential": {"parallelism": 1, "parallel_backend": "thread"},
        f"thread_x{parallelism}": {
            "parallelism": parallelism,
            "parallel_backend": "thread",
        },
        f"process_x{parallelism}": {
            "parallelism": parallelism,
            "parallel_backend": "process",
        },
    }
    out: dict = {"n_sites": n_sites}
    for name, overrides in variants.items():
        config = DistributedRunConfig(
            eps_local=eps, min_pts_local=min_pts, seed=seed, **overrides
        )
        # Tracing is on so the report breaks each variant down per phase;
        # timing fields and trace spans come from the same clock reads.
        report = DistributedRunner(
            config, tracer=Tracer(), metrics=MetricsRegistry()
        ).run(points, n_sites)
        totals = phase_totals(report.trace)
        out[name] = {
            "local_wall_seconds": report.local_wall_seconds,
            "local_cpu_seconds": report.local_cpu_seconds,
            "relabel_wall_seconds": report.relabel_wall_seconds,
            "max_local_wall_seconds": report.max_local_wall_seconds,
            "effective_workers": report.effective_parallelism,
            "parallelism_fallback_reason": report.parallelism_fallback_reason,
            "shm_bytes_shared": report.shm_bytes_shared,
            "n_global_clusters": len(
                set(int(g) for g in report.global_model.global_labels)
            ),
            "phase_wall_seconds": {
                phase: totals[phase]["wall_seconds"]
                for phase in (
                    "local_phase",
                    "global_phase",
                    "broadcast",
                    "relabel",
                )
                if phase in totals
            },
        }
    sequential = out["sequential"]["local_wall_seconds"]
    for name in variants:
        if name != "sequential":
            wall = out[name]["local_wall_seconds"]
            out[name]["speedup_vs_sequential"] = (
                sequential / wall if wall > 0 else None
            )
    return out


def bench_relabel_kernels(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    n_sites: int = 4,
    seed: int = 42,
    repeats: int = 1,
) -> dict:
    """Dense reference sweep vs. vectorized relabel kernel, same inputs.

    Builds the local models and the global model once, then times a full
    all-sites relabel pass per kernel and asserts the outputs are
    bit-identical (labels *and* stats) — the hard invariant of the kernel
    dispatch.
    """
    assignment = partition(points, n_sites, "uniform_random", seed)
    site_points = split(points, assignment)
    outcomes = [
        build_local_model(site, eps, min_pts, scheme="rep_scor", site_id=i)
        for i, site in enumerate(site_points)
    ]
    global_model, __ = build_global_model([o.model for o in outcomes])
    seconds: dict[str, float] = {}
    outputs: dict[str, list] = {}
    for kernel in ("reference", "vectorized"):

        def run_all(kernel: str = kernel):
            return [
                relabel_site(
                    site,
                    outcome.clustering.labels,
                    global_model,
                    site_id=i,
                    kernel=kernel,
                )
                for i, (site, outcome) in enumerate(zip(site_points, outcomes))
            ]

        seconds[kernel], outputs[kernel] = _best_of(run_all, repeats)
    identical = all(
        np.array_equal(ref[0], vec[0]) and ref[1] == vec[1]
        for ref, vec in zip(outputs["reference"], outputs["vectorized"])
    )
    assert identical, "vectorized relabel diverged from the reference kernel"
    vectorized = seconds["vectorized"]
    return {
        "n_sites": n_sites,
        "n_representatives": len(global_model),
        "reference_seconds": seconds["reference"],
        "vectorized_seconds": vectorized,
        "speedup": seconds["reference"] / vectorized if vectorized > 0 else None,
        "labels_identical": identical,
        "n_covered": int(sum(stats.n_covered for __, stats in outputs["vectorized"])),
    }


def bench_shm_pool(points: np.ndarray, *, n_sites: int = 4) -> dict:
    """Share / attach / verify / unlink round-trip of per-site arrays."""
    parts = [
        part for part in np.array_split(points, max(1, n_sites)) if part.size
    ]
    start = time.perf_counter()
    pool = ShmArrayPool()
    refs = [pool.share(part) for part in parts]
    setup_seconds = time.perf_counter() - start
    start = time.perf_counter()
    copies = [attach_array(ref) for ref in refs]
    attach_seconds = time.perf_counter() - start
    roundtrip_ok = all(
        np.array_equal(copy, part) for copy, part in zip(copies, parts)
    )
    start = time.perf_counter()
    pool.close()
    teardown_seconds = time.perf_counter() - start
    return {
        "n_arrays": len(refs),
        "bytes_shared": int(sum(ref.nbytes for ref in refs)),
        "setup_seconds": setup_seconds,
        "attach_seconds": attach_seconds,
        "teardown_seconds": teardown_seconds,
        "roundtrip_ok": bool(roundtrip_ok),
    }


def bench_scale_pipeline(
    cardinality: int,
    *,
    n_sites: int = 4,
    seed: int = 42,
    relabel_kernel: str = "vectorized",
) -> dict:
    """One full DBDC pipeline at ``cardinality`` with per-phase budgets.

    Hand-rolled (generate → partition → local → global → relabel) rather
    than run through ``DistributedRunner`` so every phase can carry its
    own wall + memory probe without network-simulation noise.
    """
    phases: dict[str, dict] = {}
    data, phases["generate"] = _probe(
        lambda: dataset_a(cardinality=cardinality, seed=seed)
    )
    points, eps, min_pts = data.points, data.eps_local, data.min_pts

    def do_partition():
        assignment = partition(points, n_sites, "uniform_random", seed)
        return split(points, assignment)

    site_points, phases["partition"] = _probe(do_partition)
    outcomes, phases["local"] = _probe(
        lambda: [
            build_local_model(site, eps, min_pts, scheme="rep_scor", site_id=i)
            for i, site in enumerate(site_points)
        ]
    )
    (global_model, __stats), phases["global"] = _probe(
        lambda: build_global_model([o.model for o in outcomes])
    )
    relabeled, phases["relabel"] = _probe(
        lambda: [
            relabel_site(
                site,
                outcome.clustering.labels,
                global_model,
                site_id=i,
                kernel=relabel_kernel,
            )
            for i, (site, outcome) in enumerate(zip(site_points, outcomes))
        ]
    )
    labels = np.concatenate([site_labels for site_labels, __ in relabeled])
    return {
        "cardinality": int(points.shape[0]),
        "n_sites": n_sites,
        "relabel_kernel": relabel_kernel,
        "phases": phases,
        "total_wall_seconds": sum(p["wall_seconds"] for p in phases.values()),
        "peak_rss_mb": max(p["rss_peak_mb"] for p in phases.values()),
        "n_representatives": len(global_model),
        "n_global_clusters": int(np.unique(labels[labels >= 0]).size),
        "n_covered": int(sum(stats.n_covered for __, stats in relabeled)),
    }


def _normalize_cardinalities(cardinality: int | Sequence[int]) -> list[int]:
    if isinstance(cardinality, (int, np.integer)):
        values = [int(cardinality)]
    else:
        values = [int(value) for value in cardinality]
    if not values or any(value <= 0 for value in values):
        raise ValueError(f"cardinalities must be positive, got {values}")
    return values


def run_hotpath_bench(
    *,
    cardinality: int | Sequence[int] = 20_000,
    n_sites: int = 4,
    parallelism: int = 4,
    repeats: int = 1,
    seed: int = 42,
    kinds: tuple[str, ...] = ("brute", "grid", "kdtree"),
    strict_git: bool = False,
) -> dict:
    """Run all hot-path benchmarks on data set A and return the report.

    Args:
        cardinality: one cardinality, or a sweep list — the first entry
            is the *primary* the classic sections run at, every entry gets
            a memory-budgeted scale pipeline.
        strict_git: refuse to run on a dirty git tree instead of warning.

    Raises:
        RuntimeError: dirty tree under ``strict_git``.
        ValueError: non-positive cardinalities.
    """
    cardinalities = _normalize_cardinalities(cardinality)
    primary = cardinalities[0]
    environment = run_environment()
    if environment["git_dirty"]:
        message = (
            "git tree is dirty: the report would attribute these numbers to "
            f"rev {environment['git_rev']!r}, which does not match the "
            "working tree — commit (or stash) before recording numbers"
        )
        if strict_git:
            raise RuntimeError(message)
        print(f"warning: {message}", file=sys.stderr)

    # The runner's own fallback logic decides the effective worker count
    # for this box + primary cardinality; the bench stamps the decision.
    probe_runner = DistributedRunner(
        DistributedRunConfig(
            eps_local=1.0,
            min_pts_local=1,
            parallelism=parallelism,
            parallel_backend="process",
        )
    )
    effective_workers, fallback_reason = probe_runner._resolve_parallelism(
        [np.empty((max(1, primary // max(1, n_sites)), 0))] * n_sites
    )

    report: dict = {"bench": "hotpaths"}
    points = eps = min_pts = None
    if primary <= _KERNELS_MAX:
        data = dataset_a(cardinality=primary, seed=seed)
        points, eps, min_pts = data.points, data.eps_local, data.min_pts
    if points is not None and primary <= _CLASSIC_MAX:
        report["region_queries"] = bench_region_queries(
            points, eps, kinds=kinds, repeats=repeats, seed=seed
        )
        report["dbscan"] = bench_dbscan(
            points, eps, min_pts, kinds=kinds, repeats=repeats
        )
        report["local_phase"] = bench_local_phase(
            points, eps, min_pts, n_sites=n_sites, parallelism=parallelism, seed=seed
        )
    if points is not None:
        report["relabel_kernels"] = bench_relabel_kernels(
            points, eps, min_pts, n_sites=n_sites, seed=seed, repeats=repeats
        )
        report["shm_pool"] = bench_shm_pool(points, n_sites=n_sites)
    report["scale"] = {
        str(value): bench_scale_pipeline(value, n_sites=n_sites, seed=seed)
        for value in cardinalities
    }
    dim = (
        int(points.shape[1])
        if points is not None
        else int(dataset_a(cardinality=64, seed=seed).points.shape[1])
    )
    report["meta"] = {
        "cardinality": (
            int(points.shape[0]) if points is not None else int(primary)
        ),
        "cardinalities": cardinalities,
        "dim": dim,
        "eps": float(eps) if eps is not None else None,
        "min_pts": int(min_pts) if min_pts is not None else None,
        "repeats": int(repeats),
        "seed": int(seed),
        "parallelism": int(parallelism),
        "effective_workers": int(effective_workers),
        "parallelism_fallback_reason": fallback_reason,
        "created_utc": utc_now_iso(),
        "git_rev": environment["git_rev"],
        "git_dirty": environment["git_dirty"],
        "cpu_count": environment["cpu_count"],
        "python": environment["python"],
        "numpy": environment["numpy"],
        "platform": environment["platform"],
    }
    return report


def flat_metrics(report: dict) -> dict[str, float]:
    """Flatten a hot-path report into RunRecord metrics.

    Per-kind numbers keep the kind in brackets
    (``"dbscan.speedup[grid]"``) per the :mod:`repro.obs` name contract;
    the regression gate treats ``*speedup*`` as higher-is-better and
    ``*seconds*`` as lower-is-better.  Deterministic correctness metrics
    (``relabel_kernels.labels_identical``, ``shm.roundtrip_ok``, cluster
    and coverage counts) survive ``--ignore-timing`` and are what the CI
    smoke gate actually pins.
    """
    out: dict[str, float] = {}
    for kind, row in report.get("region_queries", {}).items():
        out[f"region_queries.single_seconds[{kind}]"] = row["single_seconds"]
        out[f"region_queries.batched_seconds[{kind}]"] = row["batched_seconds"]
        if row["speedup"] is not None:
            out[f"region_queries.speedup[{kind}]"] = row["speedup"]
    for kind, row in report.get("dbscan", {}).items():
        out[f"dbscan.single_seconds[{kind}]"] = row["single_seconds"]
        out[f"dbscan.batched_seconds[{kind}]"] = row["batched_seconds"]
        if row["speedup"] is not None:
            out[f"dbscan.speedup[{kind}]"] = row["speedup"]
        out[f"dbscan.clusters_count[{kind}]"] = row["n_clusters"]
        out[f"dbscan.region_queries_count[{kind}]"] = row["n_region_queries"]
    for name, row in report.get("local_phase", {}).items():
        if name == "n_sites":
            continue
        out[f"local_phase.wall_seconds[{name}]"] = row["local_wall_seconds"]
        out[f"local_phase.cpu_seconds[{name}]"] = row["local_cpu_seconds"]
        out[f"local_phase.relabel_wall_seconds[{name}]"] = row[
            "relabel_wall_seconds"
        ]
        out[f"local_phase.effective_workers[{name}]"] = float(
            row["effective_workers"]
        )
        if "speedup_vs_sequential" in row and row["speedup_vs_sequential"]:
            out[f"local_phase.speedup[{name}]"] = row["speedup_vs_sequential"]
    kernels = report.get("relabel_kernels")
    if kernels:
        out["relabel_kernels.wall_seconds[reference]"] = kernels[
            "reference_seconds"
        ]
        out["relabel_kernels.wall_seconds[vectorized]"] = kernels[
            "vectorized_seconds"
        ]
        if kernels["speedup"] is not None:
            out["relabel_kernels.speedup"] = kernels["speedup"]
        out["relabel_kernels.labels_identical"] = float(
            kernels["labels_identical"]
        )
        out["relabel_kernels.covered_count"] = float(kernels["n_covered"])
        out["relabel_kernels.representatives_count"] = float(
            kernels["n_representatives"]
        )
    shm = report.get("shm_pool")
    if shm:
        out["shm.setup_seconds"] = shm["setup_seconds"]
        out["shm.attach_seconds"] = shm["attach_seconds"]
        out["shm.teardown_seconds"] = shm["teardown_seconds"]
        out["shm.bytes_shared"] = float(shm["bytes_shared"])
        out["shm.roundtrip_ok"] = float(shm["roundtrip_ok"])
    for value, row in report.get("scale", {}).items():
        out[f"scale.total_wall_seconds[{value}]"] = row["total_wall_seconds"]
        out[f"scale.rss_peak_mb[{value}]"] = row["peak_rss_mb"]
        out[f"scale.clusters_count[{value}]"] = float(row["n_global_clusters"])
        out[f"scale.covered_count[{value}]"] = float(row["n_covered"])
        for phase, budget in row["phases"].items():
            out[f"scale.wall_seconds[{value}:{phase}]"] = budget["wall_seconds"]
            out[f"scale.tracemalloc_peak_mb[{value}:{phase}]"] = budget[
                "tracemalloc_peak_mb"
            ]
    return out


def write_report(report: dict, path: str = DEFAULT_REPORT_PATH) -> str:
    """Write the benchmark report as pretty-printed JSON (makes parent dirs)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(report: dict) -> str:
    """Human-readable summary of a hot-path benchmark report."""
    meta = report["meta"]
    workers = f"workers={meta['effective_workers']}/{meta['parallelism']}"
    if meta.get("parallelism_fallback_reason"):
        workers += f" ({meta['parallelism_fallback_reason']})"
    lines = [
        f"hot paths @ n={meta['cardinality']} "
        f"(cpus={meta['cpu_count']}, {workers})"
    ]
    if "region_queries" in report:
        lines.append("region queries (single -> batched):")
        for kind, row in report["region_queries"].items():
            lines.append(
                f"  {kind:7s} {row['single_seconds']:.3f}s -> "
                f"{row['batched_seconds']:.3f}s  ({row['speedup']:.2f}x)"
            )
    if "dbscan" in report:
        lines.append("DBSCAN (classic -> frontier-batched):")
        for kind, row in report["dbscan"].items():
            lines.append(
                f"  {kind:7s} {row['single_seconds']:.3f}s -> "
                f"{row['batched_seconds']:.3f}s  ({row['speedup']:.2f}x, "
                f"{row['n_region_queries']} queries)"
            )
    if "local_phase" in report:
        lines.append(
            f"local phase over {report['local_phase']['n_sites']} sites "
            f"(wall seconds):"
        )
        for name, row in report["local_phase"].items():
            if name == "n_sites":
                continue
            extra = f"  [workers={row['effective_workers']}"
            if row.get("parallelism_fallback_reason"):
                extra += f", fallback={row['parallelism_fallback_reason']}"
            extra += "]"
            if "speedup_vs_sequential" in row:
                extra += f"  ({row['speedup_vs_sequential']:.2f}x vs sequential)"
            lines.append(f"  {name:12s} {row['local_wall_seconds']:.3f}s{extra}")
    if "relabel_kernels" in report:
        row = report["relabel_kernels"]
        lines.append(
            f"relabel kernels ({row['n_representatives']} representatives, "
            f"bit-identical={row['labels_identical']}):"
        )
        lines.append(
            f"  reference  {row['reference_seconds']:.3f}s -> "
            f"vectorized {row['vectorized_seconds']:.3f}s  "
            f"({row['speedup']:.2f}x)"
        )
    if "shm_pool" in report:
        row = report["shm_pool"]
        lines.append(
            f"shm pool: {row['bytes_shared']} bytes in {row['n_arrays']} "
            f"arrays, share {row['setup_seconds'] * 1e3:.1f}ms / attach "
            f"{row['attach_seconds'] * 1e3:.1f}ms / unlink "
            f"{row['teardown_seconds'] * 1e3:.1f}ms, "
            f"roundtrip_ok={row['roundtrip_ok']}"
        )
    if report.get("scale"):
        lines.append("scale sweep (wall s | tracemalloc peak MB | rss MB):")
        for value, row in report["scale"].items():
            lines.append(
                f"  n={value}: total {row['total_wall_seconds']:.2f}s, "
                f"rss peak {row['peak_rss_mb']:.0f}MB, "
                f"{row['n_global_clusters']} clusters"
            )
            for phase, budget in row["phases"].items():
                lines.append(
                    f"    {phase:9s} {budget['wall_seconds']:8.2f}s | "
                    f"{budget['tracemalloc_peak_mb']:8.1f} | "
                    f"{budget['rss_peak_mb']:8.0f}"
                )
    return "\n".join(lines)


def record_bench_run(report: dict, registry_root: str) -> dict:
    """Append one hot-path report to the run registry.

    The registry holds the durable history; the top-level
    ``BENCH_hotpaths.json`` is just the generated "latest" view.  The
    record's run id is stamped back into ``report["meta"]["run_id"]`` so
    the latest view points at its registry entry.
    """
    from repro.obs.registry import RunRegistry

    meta = report["meta"]
    record = RunRegistry(registry_root).record(
        "bench",
        config={
            key: meta[key]
            for key in ("cardinality", "dim", "eps", "min_pts", "repeats", "seed")
        },
        metrics=flat_metrics(report),
        artifacts={"BENCH_hotpaths.json": report},
    )
    meta["run_id"] = record["run_id"]
    return record


def _parse_cardinality(text: str) -> list[int]:
    """Parse ``"20000"`` or ``"20000,200000,1000000"``."""
    try:
        return [int(part.strip()) for part in text.split(",") if part.strip()]
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"cardinality must be a comma-separated list of ints, got {text!r}"
        ) from error


def main(argv: list[str] | None = None) -> int:
    """Stand-alone entry point (also reachable as ``repro.cli bench``)."""
    parser = argparse.ArgumentParser(description="DBDC hot-path benchmarks")
    parser.add_argument(
        "--cardinality",
        type=_parse_cardinality,
        default=[20_000],
        help="primary cardinality, or a comma-separated sweep "
        "(e.g. 20000,200000,1000000); every entry gets a memory-budgeted "
        "scale pipeline, the first also runs the classic sections",
    )
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--parallelism", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--strict-git",
        action="store_true",
        help="refuse to run on a dirty git tree (default: warn)",
    )
    parser.add_argument("--out", default=DEFAULT_REPORT_PATH)
    parser.add_argument("--registry", default=".runs")
    parser.add_argument("--no-registry", action="store_true")
    args = parser.parse_args(argv)
    report = run_hotpath_bench(
        cardinality=args.cardinality,
        n_sites=args.sites,
        parallelism=args.parallelism,
        repeats=args.repeats,
        seed=args.seed,
        strict_git=args.strict_git,
    )
    print(format_summary(report))
    if not args.no_registry:
        try:
            record = record_bench_run(report, args.registry)
        except Exception as error:  # never fail the run over bookkeeping
            print(f"warning: could not record run: {error}", file=sys.stderr)
        else:
            print(f"recorded {record['run_id']} in {args.registry}")
    path = write_report(report, args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
