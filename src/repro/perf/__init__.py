"""Performance measurement utilities (hot-path benchmarks, BENCH_*.json)."""

from repro.perf.hotpaths import run_hotpath_bench, write_report

__all__ = ["run_hotpath_bench", "write_report"]
