"""Traced pipeline runs: the ``trace`` command of the experiment harness.

Runs one distributed DBDC round with the :mod:`repro.obs` tracer and
metrics registry attached, then exports the result two ways:

* the repo's own trace JSON (``--trace-out``), validated against the
  checked-in ``repro/obs/trace_schema.json``;
* Chrome's ``trace_event`` JSON (``--chrome-out``), loadable in
  ``chrome://tracing`` / Perfetto.

``--smoke`` runs a tiny round and verifies the whole chain end to end —
schema validity, span nesting, and that the trace's per-phase wall totals
reconcile with the run report's timing fields within 1% — which is what
the CI smoke step executes::

    python -m repro trace --smoke

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.distributed.runner import (
    DistributedRunConfig,
    DistributedRunner,
    DistributedRunReport,
)
from repro.faults import FaultPlan
from repro.obs import (
    MetricsRegistry,
    Tracer,
    phase_totals,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_trace,
)

__all__ = [
    "run_traced",
    "reconcile_trace",
    "smoke_check",
    "format_trace_summary",
    "record_trace_run",
    "critical_path_command",
    "main",
]

DEFAULT_TRACE_PATH = "TRACE_run.json"

# (phase span name, report attribute) pairs whose wall durations must agree.
_RECONCILED_FIELDS = (
    ("run > local_phase > compute", "local_wall_seconds"),
    ("run > relabel > compute", "relabel_wall_seconds"),
    ("run > global_phase", "global_wall_seconds"),
)


def run_traced(
    *,
    dataset: str = "A",
    cardinality: int | None = None,
    n_sites: int = 4,
    scheme: str = "rep_scor",
    seed: int = 42,
    parallelism: int = 1,
    fault_intensity: float = 0.0,
    fault_seed: int = 0,
) -> DistributedRunReport:
    """One distributed round with tracing on; the report carries the trace.

    Args:
        dataset: paper data set name (``A``/``B``/``C``).
        cardinality: optional cardinality override.
        n_sites: number of client sites.
        scheme: local model scheme.
        seed: partitioning seed.
        parallelism: local-phase width.
        fault_intensity: ``> 0`` runs the degraded-mode protocol under
            ``FaultPlan.chaos(fault_intensity)``.
        fault_seed: seed of that fault plan.

    Returns:
        The run's :class:`~repro.distributed.runner.DistributedRunReport`
        with :attr:`~repro.distributed.runner.DistributedRunReport.trace`
        populated.
    """
    from repro.data.datasets import load_dataset

    data = load_dataset(dataset, cardinality=cardinality)
    config = DistributedRunConfig(
        eps_local=data.eps_local,
        min_pts_local=data.min_pts,
        scheme=scheme,
        seed=seed,
        parallelism=parallelism,
    )
    plan = (
        FaultPlan.chaos(fault_intensity, seed=fault_seed)
        if fault_intensity > 0
        else None
    )
    runner = DistributedRunner(
        config,
        fault_plan=plan,
        tracer=Tracer(),
        metrics=MetricsRegistry(),
    )
    return runner.run(data.points, n_sites)


def _span_path_duration(doc: dict, path: str) -> float | None:
    """Wall duration of the first span matching ``a > b > c`` from a root."""
    names = [part.strip() for part in path.split(">")]
    spans = doc["spans"]
    found = None
    for name in names:
        found = next((s for s in spans if s["name"] == name), None)
        if found is None:
            return None
        spans = found.get("children", [])
    return found["wall_end"] - found["wall_start"]


def reconcile_trace(
    doc: dict, report: DistributedRunReport, *, tolerance: float = 0.01
) -> list[str]:
    """Check the trace's phase durations against the report's fields.

    The spans are recorded from the very ``perf_counter`` reads that
    produced the report, so agreement should be exact; ``tolerance`` (a
    relative fraction) only absorbs float round-trips through JSON.

    Returns:
        Human-readable mismatch descriptions (empty = reconciled).
    """
    problems: list[str] = []
    for path, field in _RECONCILED_FIELDS:
        span_seconds = _span_path_duration(doc, path)
        report_seconds = getattr(report, field)
        if span_seconds is None:
            problems.append(f"span {path!r} missing from trace")
            continue
        if abs(span_seconds - report_seconds) > tolerance * max(
            report_seconds, 1e-9
        ):
            problems.append(
                f"span {path!r} = {span_seconds:.6f}s but report.{field} "
                f"= {report_seconds:.6f}s (tolerance {tolerance:.0%})"
            )
    return problems


def smoke_check(*, n_sites: int = 3, seed: int = 7) -> list[str]:
    """End-to-end validation of the tracing chain on a tiny round.

    Returns:
        All problems found (empty = the smoke test passes).
    """
    report = run_traced(
        dataset="A",
        cardinality=1200,
        n_sites=n_sites,
        seed=seed,
        fault_intensity=0.0,
    )
    doc = report.trace
    problems = [f"schema: {err}" for err in validate_trace(doc)]
    problems += reconcile_trace(doc, report)
    # The JSON round-trip must preserve validity.
    rehydrated = json.loads(json.dumps(doc))
    problems += [f"round-trip: {err}" for err in validate_trace(rehydrated)]
    chrome = to_chrome_trace(doc)
    events = chrome.get("traceEvents", [])
    if not events:
        problems.append("chrome trace has no events")
    for event in events:
        if event.get("ph") == "X" and event.get("dur", 0) < 0:
            problems.append(f"chrome event {event.get('name')!r} negative dur")
    totals = phase_totals(doc)
    for required in ("run", "local_phase", "global_phase", "relabel"):
        if required not in totals:
            problems.append(f"phase totals missing {required!r}")
    return problems


def format_trace_summary(doc: dict) -> str:
    """Human-readable per-phase breakdown of one trace document."""
    totals = phase_totals(doc)
    lines = ["per-phase totals (wall seconds):"]
    for name in sorted(totals, key=lambda n: -totals[n]["wall_seconds"]):
        row = totals[name]
        sim = (
            f"  sim={row['sim_seconds']:.3f}s"
            if row.get("sim_seconds") is not None
            else ""
        )
        lines.append(
            f"  {name:24s} {row['wall_seconds']:8.4f}s  x{row['count']}{sim}"
        )
    counters = doc.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:32s} {counters[name]:g}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Stand-alone entry point (also reachable as ``repro.cli trace``)."""
    parser = argparse.ArgumentParser(description="Traced DBDC pipeline run")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny run + schema/reconciliation validation")
    parser.add_argument("--dataset", default="A")
    parser.add_argument("--cardinality", type=int, default=None)
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--scheme", default="rep_scor",
                        choices=["rep_scor", "rep_kmeans"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--parallelism", type=int, default=1)
    parser.add_argument("--fault-intensity", type=float, default=0.0)
    parser.add_argument("--trace-out", default=DEFAULT_TRACE_PATH)
    parser.add_argument("--chrome-out", default=None,
                        help="also write Chrome trace_event JSON here")
    parser.add_argument("--critical-path", default=None, metavar="TRACE_JSON",
                        help="print the per-round critical path of a merged "
                        "session trace (from 'serve-trace') and exit")
    parser.add_argument("--registry", default=".runs",
                        help="run registry root")
    parser.add_argument("--no-registry", action="store_true",
                        help="skip the RunRecord append")
    args = parser.parse_args(argv)
    return run_trace_command(args)


def record_trace_run(
    report: DistributedRunReport,
    args: argparse.Namespace,
    registry_root: str,
) -> dict:
    """Append one traced run to the run registry.

    Stores the report's flat metrics plus per-phase wall totals from the
    trace, the full ``MetricsRegistry`` snapshot, and the trace document
    itself as an artifact.
    """
    from repro.obs.registry import RunRegistry

    doc = report.trace
    metrics = report.flat_metrics()
    for name, row in phase_totals(doc).items():
        metrics[f"phase.wall_seconds[{name}]"] = row["wall_seconds"]
    return RunRegistry(registry_root).record(
        "trace",
        config={
            "dataset": args.dataset,
            "cardinality": args.cardinality,
            "n_sites": args.sites,
            "scheme": args.scheme,
            "seed": args.seed,
            "parallelism": args.parallelism,
            "fault_intensity": args.fault_intensity,
        },
        metrics=metrics,
        metrics_registry=doc.get("metrics"),
        artifacts={"TRACE_run.json": doc},
    )


def critical_path_command(path: str) -> int:
    """Print the per-round critical path of a merged session trace.

    The document comes from ``repro serve-trace`` (or
    ``ServiceHandle.merged_trace``); the analysis itself lives in
    :mod:`repro.service.tracing` next to the session runner.
    """
    from repro.service.tracing import critical_path, format_critical_path

    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    errors = validate_trace(doc)
    if errors:
        for error in errors:
            print(f"INVALID TRACE: {error}")
        return 1
    rows = critical_path(doc)
    print(format_critical_path(rows))
    return 0 if rows else 1


def run_trace_command(args: argparse.Namespace) -> int:
    """Execute the ``trace`` command from parsed arguments."""
    if getattr(args, "critical_path", None):
        return critical_path_command(args.critical_path)
    if args.smoke:
        problems = smoke_check()
        if problems:
            for problem in problems:
                print(f"SMOKE FAIL: {problem}")
            return 1
        print("trace smoke: ok (schema valid, phases reconcile with report)")
        return 0
    report = run_traced(
        dataset=args.dataset,
        cardinality=args.cardinality,
        n_sites=args.sites,
        scheme=args.scheme,
        seed=args.seed,
        parallelism=args.parallelism,
        fault_intensity=args.fault_intensity,
    )
    doc = report.trace
    errors = validate_trace(doc)
    if errors:
        for error in errors:
            print(f"INVALID TRACE: {error}")
        return 1
    print(format_trace_summary(doc))
    if not getattr(args, "no_registry", False):
        registry_root = getattr(args, "registry", ".runs")
        try:
            record = record_trace_run(report, args, registry_root)
        except Exception as error:  # never fail the run over bookkeeping
            print(f"warning: could not record run: {error}", file=sys.stderr)
        else:
            print(f"recorded {record['run_id']} in {registry_root}")
    path = write_trace(doc, args.trace_out)
    print(f"wrote {path}")
    if args.chrome_out:
        chrome_path = write_chrome_trace(doc, args.chrome_out)
        print(f"wrote {chrome_path} (load in chrome://tracing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
