"""``python -m repro`` — the experiment harness CLI.

Identical to ``python -m repro.cli``; see :mod:`repro.cli`.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
