"""k-means (Lloyd's algorithm), as needed by the ``REP_kMeans`` local model.

Section 5.2 of the paper runs k-means *inside each locally found DBSCAN
cluster* with two unusual requirements that rule out off-the-shelf
implementations:

* ``k`` is fixed to the number of specific core points of the cluster, and
* the iteration is *seeded with exactly those specific core points* (no
  random initialization).

This module therefore exposes Lloyd iterations with caller-supplied seeds as
the primary interface, plus conventional random initialization for
standalone use (examples, baselines).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.distance import Metric, get_metric

__all__ = ["KMeansResult", "kmeans", "lloyd_iterations"]


@dataclass
class KMeansResult:
    """Outcome of a k-means run.

    Attributes:
        centroids: array of shape ``(k, d)``.
        labels: per-object centroid assignment in ``0..k-1``.
        inertia: sum of squared distances of objects to their centroid.
        n_iterations: Lloyd iterations executed.
        converged: whether assignments became stable before ``max_iter``.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool

    @property
    def k(self) -> int:
        """Number of centroids."""
        return self.centroids.shape[0]

    def radius_of(self, cluster_id: int, points: np.ndarray) -> float:
        """Max distance from ``cluster_id``'s members to its centroid.

        This is exactly the ``ε_c`` assigned to ``REP_kMeans``
        representatives (Section 5.2).  Returns 0.0 for empty clusters.
        """
        members = np.flatnonzero(self.labels == cluster_id)
        if members.size == 0:
            return 0.0
        diff = np.asarray(points, dtype=float)[members] - self.centroids[cluster_id]
        return float(np.sqrt(np.einsum("ij,ij->i", diff, diff)).max())


def _assign(points: np.ndarray, centroids: np.ndarray, metric: Metric) -> np.ndarray:
    """Nearest-centroid assignment (ties go to the lowest centroid id)."""
    distances = metric.matrix(centroids, points)  # (k, n)
    return distances.argmin(axis=0).astype(np.intp)


def _update(
    points: np.ndarray, labels: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """Mean update; empty clusters keep their previous centroid."""
    new_centroids = centroids.copy()
    for cid in range(centroids.shape[0]):
        members = np.flatnonzero(labels == cid)
        if members.size:
            new_centroids[cid] = points[members].mean(axis=0)
    return new_centroids


def _inertia(points: np.ndarray, labels: np.ndarray, centroids: np.ndarray) -> float:
    diff = points - centroids[labels]
    return float(np.einsum("ij,ij->", diff, diff))


def lloyd_iterations(
    points: np.ndarray,
    seeds: np.ndarray,
    *,
    metric: str | Metric = "euclidean",
    max_iter: int = 100,
    tol: float = 0.0,
) -> KMeansResult:
    """Run Lloyd's algorithm from explicit seed centroids.

    Args:
        points: array of shape ``(n, d)`` with ``n >= 1``.
        seeds: initial centroids of shape ``(k, d)`` with ``1 <= k``.
        metric: metric used for the assignment step (the update step is the
            arithmetic mean regardless, as in classical k-means).
        max_iter: iteration cap.
        tol: optional centroid-movement tolerance; 0 means "stop only on
            stable assignments".

    Returns:
        A :class:`KMeansResult`.

    Raises:
        ValueError: on empty inputs or dimension mismatch.
    """
    points = np.asarray(points, dtype=float)
    seeds = np.asarray(seeds, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError(f"points must be a non-empty (n, d) array, got {points.shape}")
    if seeds.ndim != 2 or seeds.shape[0] == 0:
        raise ValueError(f"seeds must be a non-empty (k, d) array, got {seeds.shape}")
    if seeds.shape[1] != points.shape[1]:
        raise ValueError(
            f"dimension mismatch: points are {points.shape[1]}-D, "
            f"seeds are {seeds.shape[1]}-D"
        )
    resolved = get_metric(metric)
    centroids = seeds.copy()
    labels = _assign(points, centroids, resolved)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        centroids_next = _update(points, labels, centroids)
        labels_next = _assign(points, centroids_next, resolved)
        movement = float(np.abs(centroids_next - centroids).max())
        centroids = centroids_next
        if np.array_equal(labels_next, labels) or movement <= tol:
            labels = labels_next
            converged = True
            break
        labels = labels_next
    return KMeansResult(
        centroids=centroids,
        labels=labels,
        inertia=_inertia(points, labels, centroids),
        n_iterations=iterations,
        converged=converged,
    )


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    metric: str | Metric = "euclidean",
    max_iter: int = 100,
    seed: int | np.random.Generator = 0,
    n_init: int = 1,
) -> KMeansResult:
    """Conventional k-means with random restarts.

    Args:
        points: array of shape ``(n, d)``.
        k: number of clusters, ``1 <= k <= n``.
        metric: assignment metric.
        max_iter: Lloyd iteration cap per restart.
        seed: RNG seed or generator for the initial centroid draws.
        n_init: number of restarts; the lowest-inertia run wins.

    Returns:
        Best :class:`KMeansResult` across restarts.

    Raises:
        ValueError: if ``k`` is out of range.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0] if points.ndim == 2 else 0
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    best: KMeansResult | None = None
    for __ in range(max(1, n_init)):
        chosen = rng.choice(n, size=k, replace=False)
        result = lloyd_iterations(points, points[chosen], metric=metric, max_iter=max_iter)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
