"""Single-link agglomerative clustering (baseline).

Section 4 of the paper rules out the single-link method for local
clustering: it "is suitable for capturing clusters with non-globular
shapes, but this approach is very sensitive to noise and cannot handle
clusters of varying density".  We implement it (plus a distance-threshold
cut) so the baseline experiments can demonstrate exactly that claim, next
to the k-means weakness on non-globular shapes.

The implementation computes the single-link dendrogram via a minimum
spanning tree (Prim's algorithm on the dense distance matrix — single-link
merges are exactly MST edges in ascending weight order), then cuts it
either at a distance threshold or at a target cluster count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE
from repro.data.distance import Metric, get_metric

__all__ = ["SingleLinkResult", "single_link", "cut_by_distance", "cut_by_count"]


@dataclass
class SingleLinkResult:
    """The single-link dendrogram in MST form.

    Attributes:
        edges: MST edges as ``(weight, u, v)`` sorted by ascending weight;
            merging them in order replays the agglomeration.
        n: number of objects.
    """

    edges: list[tuple[float, int, int]]
    n: int


def single_link(
    points: np.ndarray, *, metric: str | Metric = "euclidean"
) -> SingleLinkResult:
    """Build the single-link dendrogram of ``points``.

    Args:
        points: array of shape ``(n, d)``.
        metric: distance metric.

    Returns:
        A :class:`SingleLinkResult` (the MST of the complete distance
        graph).
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if n == 0:
        return SingleLinkResult([], 0)
    # Prim's algorithm with O(n^2) time / O(n) memory.
    in_tree = np.zeros(n, dtype=bool)
    best_dist = np.full(n, np.inf)
    best_from = np.full(n, -1, dtype=np.intp)
    in_tree[0] = True
    if n > 1:
        best_dist = resolved.to_many(points[0], points)
        best_dist[0] = np.inf
        best_from[:] = 0
    edges: list[tuple[float, int, int]] = []
    for __ in range(n - 1):
        nxt = int(np.argmin(np.where(in_tree, np.inf, best_dist)))
        edges.append((float(best_dist[nxt]), int(best_from[nxt]), nxt))
        in_tree[nxt] = True
        dist_new = resolved.to_many(points[nxt], points)
        closer = (~in_tree) & (dist_new < best_dist)
        best_dist[closer] = dist_new[closer]
        best_from[closer] = nxt
    edges.sort(key=lambda e: e[0])
    return SingleLinkResult(edges, n)


class _UnionFind:
    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        self.parent[self.find(a)] = self.find(b)


def cut_by_distance(
    result: SingleLinkResult, threshold: float, *, min_cluster_size: int = 1
) -> np.ndarray:
    """Flat clustering: merge all MST edges with weight <= ``threshold``.

    Args:
        result: dendrogram from :func:`single_link`.
        threshold: merge distance cut.
        min_cluster_size: components smaller than this become noise
            (mimics how practitioners suppress single-link's singletons).

    Returns:
        Label array (noise = -1 for suppressed small components).
    """
    uf = _UnionFind(result.n)
    for weight, u, v in result.edges:
        if weight <= threshold:
            uf.union(u, v)
    return _labels_from_components(uf, result.n, min_cluster_size)


def cut_by_count(result: SingleLinkResult, k: int) -> np.ndarray:
    """Flat clustering with exactly ``k`` components (cut the k-1 largest
    merges).

    Args:
        result: dendrogram from :func:`single_link`.
        k: target number of clusters, ``1 <= k <= n``.

    Returns:
        Label array (no noise).

    Raises:
        ValueError: if ``k`` is out of range.
    """
    if not 1 <= k <= max(result.n, 1):
        raise ValueError(f"k must be in [1, {result.n}], got {k}")
    uf = _UnionFind(result.n)
    # Merging all but the (k-1) heaviest MST edges leaves k components.
    for weight, u, v in result.edges[: result.n - k]:
        uf.union(u, v)
    return _labels_from_components(uf, result.n, 1)


def _labels_from_components(
    uf: _UnionFind, n: int, min_cluster_size: int
) -> np.ndarray:
    sizes: dict[int, int] = {}
    for i in range(n):
        root = uf.find(i)
        sizes[root] = sizes.get(root, 0) + 1
    labels = np.full(n, NOISE, dtype=np.intp)
    mapping: dict[int, int] = {}
    for i in range(n):
        root = uf.find(i)
        if sizes[root] < min_cluster_size:
            continue
        if root not in mapping:
            mapping[root] = len(mapping)
        labels[i] = mapping[root]
    return labels
