"""Clustering algorithms built from scratch for the DBDC reproduction.

* :mod:`repro.clustering.dbscan` — DBSCAN (local and global clustering),
* :mod:`repro.clustering.incremental` — incremental DBSCAN maintenance,
* :mod:`repro.clustering.kmeans` — seeded Lloyd iterations (``REP_kMeans``),
* :mod:`repro.clustering.optics` — OPTICS ordering (global-model variant),
* :mod:`repro.clustering.labels` — label conventions shared by all of them.
"""

from repro.clustering.dbscan import DBSCAN, DBSCANResult, dbscan
from repro.clustering.incremental import IncrementalDBSCAN
from repro.clustering.kmeans import KMeansResult, kmeans, lloyd_iterations
from repro.clustering.labels import (
    NOISE,
    UNCLASSIFIED,
    cluster_ids,
    cluster_members,
    cluster_sizes,
    compact_labels,
    contingency_table,
    n_clusters,
    noise_mask,
    noise_ratio,
)
from repro.clustering.optics import OPTICSResult, extract_dbscan_clustering, optics
from repro.clustering.parameters import (
    k_distances,
    sorted_k_distance_plot,
    suggest_eps_by_knee,
    suggest_eps_by_quantile,
    suggest_parameters,
)
from repro.clustering.singlelink import (
    SingleLinkResult,
    cut_by_count,
    cut_by_distance,
    single_link,
)

__all__ = [
    "k_distances",
    "sorted_k_distance_plot",
    "suggest_eps_by_knee",
    "suggest_eps_by_quantile",
    "suggest_parameters",
    "SingleLinkResult",
    "cut_by_count",
    "cut_by_distance",
    "single_link",
    "DBSCAN",
    "DBSCANResult",
    "dbscan",
    "IncrementalDBSCAN",
    "KMeansResult",
    "kmeans",
    "lloyd_iterations",
    "OPTICSResult",
    "optics",
    "extract_dbscan_clustering",
    "NOISE",
    "UNCLASSIFIED",
    "cluster_ids",
    "cluster_members",
    "cluster_sizes",
    "compact_labels",
    "contingency_table",
    "n_clusters",
    "noise_mask",
    "noise_ratio",
]
