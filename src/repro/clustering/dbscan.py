"""DBSCAN — the density-based clustering algorithm of Ester et al. (KDD'96).

This is the algorithm DBDC runs on every local site *and* (with adapted
parameters) on the server.  The implementation follows Definitions 1-5 of
the paper exactly:

* a *core object* has at least ``MinPts`` objects in its ``Eps``-
  neighborhood (which contains the object itself),
* clusters are maximal sets of density-connected objects,
* everything else is *noise*.

Objects are processed in a deterministic order (ascending index), which the
paper explicitly leans on: "the actual processing order of the objects
during the DBSCAN run determines a concrete set of specific core points"
(Section 5).  DBDC hooks into the run through the :class:`DBSCANObserver`
protocol — the local-model builders receive every core point *in processing
order* together with its neighborhood, exactly the information needed to
pick specific core points on the fly.

Two expansion strategies produce that identical processing order:

* the classic one-seed-at-a-time loop (``batched=False``), which issues one
  region query per popped seed, and
* the default frontier-at-a-time loop (``batched=True``), which drains the
  whole seed queue each round, answers it with **one** batched region query
  (``NeighborIndex.region_query_batch``), and then applies the results in
  the exact FIFO order the sequential loop would have used.

Because the seed queue is FIFO, one "round" of the sequential loop processes
precisely the seeds that were enqueued before the round started — the
frontier.  Region queries read only the immutable index, never the label
array, so evaluating them up front cannot change any neighborhood.  Labels,
core flags, ``n_region_queries`` and the observer event sequence are
therefore bit-identical between the two strategies (guarded by
``tests/test_dbscan_batched.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.clustering.labels import NOISE, UNCLASSIFIED, n_clusters
from repro.data.distance import Metric, get_metric
from repro.index import NeighborIndex, build_index

__all__ = ["DBSCAN", "DBSCANResult", "DBSCANObserver", "dbscan"]


class DBSCANObserver(Protocol):
    """Callback protocol invoked during a DBSCAN run.

    Implementations receive events in processing order; DBDC's specific-
    core-point selector is the canonical observer.
    """

    def on_cluster_start(self, cluster_id: int, seed_index: int) -> None:
        """A new cluster ``cluster_id`` starts expanding from ``seed_index``."""

    def on_core_point(
        self, index: int, cluster_id: int, neighbors: np.ndarray
    ) -> None:
        """``index`` was identified as a core point of ``cluster_id``.

        Args:
            index: the core object's row index.
            cluster_id: cluster being expanded.
            neighbors: indices of ``N_Eps(index)`` (includes ``index``).
        """


@dataclass
class DBSCANResult:
    """Outcome of one DBSCAN run.

    Attributes:
        labels: per-object cluster id, ``NOISE`` (-1) for noise.
        core_mask: boolean array, ``True`` for core objects.
        eps: the ``Eps`` parameter used.
        min_pts: the ``MinPts`` parameter used.
        n_region_queries: number of ``Eps``-range queries issued (cost
            proxy used by the efficiency experiments).
        index: the neighbor index built for (or passed into) the run;
            reusable for follow-up queries such as specific ε-ranges.
    """

    labels: np.ndarray
    core_mask: np.ndarray
    eps: float
    min_pts: int
    n_region_queries: int
    index: NeighborIndex = field(repr=False)

    @property
    def n_clusters(self) -> int:
        """Number of clusters found."""
        return n_clusters(self.labels)

    @property
    def n_noise(self) -> int:
        """Number of noise objects."""
        return int(np.count_nonzero(self.labels == NOISE))

    def members(self, cluster_id: int) -> np.ndarray:
        """Sorted indices of the objects in ``cluster_id``."""
        return np.flatnonzero(self.labels == cluster_id)

    def core_points_of(self, cluster_id: int) -> np.ndarray:
        """Sorted indices of the *core* objects of ``cluster_id``."""
        return np.flatnonzero((self.labels == cluster_id) & self.core_mask)


class DBSCAN:
    """Configurable DBSCAN runner.

    Args:
        eps: neighborhood radius ``Eps``.
        min_pts: density threshold ``MinPts`` (neighborhood cardinality,
            the query object included — as in Definition 1).
        metric: distance metric name or instance.
        index_kind: neighbor index to build (``"auto"`` picks the grid for
            ``L_p`` metrics, see :func:`repro.index.build_index`).
        batched: expand clusters frontier-at-a-time through batched region
            queries (default).  ``False`` selects the classic one-query-per-
            seed loop; both produce bit-identical results (see the module
            docstring) — the sequential loop is kept as the equivalence
            reference and benchmark baseline.

    Raises:
        ValueError: for non-positive ``eps`` or ``min_pts < 1``.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        *,
        metric: str | Metric = "euclidean",
        index_kind: str = "auto",
        batched: bool = True,
    ) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.metric = get_metric(metric)
        self.index_kind = index_kind
        self.batched = bool(batched)

    def fit(
        self,
        points: np.ndarray,
        *,
        index: NeighborIndex | None = None,
        observer: DBSCANObserver | None = None,
        order: Sequence[int] | None = None,
        metrics=None,
    ) -> DBSCANResult:
        """Cluster ``points``.

        Args:
            points: array of shape ``(n, d)``.
            index: pre-built neighbor index over the same points (built
                automatically when omitted).
            observer: optional event sink (see :class:`DBSCANObserver`).
            order: processing order of start objects; defaults to
                ascending index.  Must be a permutation of ``range(n)``.
            metrics: optional :class:`~repro.obs.MetricsRegistry`.  The
                run records its counters (``dbscan.*``) and attaches the
                registry to the index for the duration of the fit so the
                per-query metrics (``index.*``) are captured too.  Labels
                and query counts are identical with or without it.

        Returns:
            A :class:`DBSCANResult`.
        """
        points = np.asarray(points, dtype=float)
        n = points.shape[0] if points.ndim == 2 else 0
        if index is None:
            index = build_index(
                points, self.index_kind, metric=self.metric, eps=self.eps
            )
        labels = np.full(n, UNCLASSIFIED, dtype=np.intp)
        core_mask = np.zeros(n, dtype=bool)
        if order is None:
            start_order: Sequence[int] = range(n)
        else:
            start_order = list(order)
            if sorted(start_order) != list(range(n)):
                raise ValueError("order must be a permutation of range(n)")
        queries = 0
        next_cluster = 0
        observe_index = metrics is not None and hasattr(index, "attach_metrics")
        if observe_index:
            index.attach_metrics(metrics)
        expand = self._expand_batched if self.batched else self._expand_sequential
        try:
            for start in start_order:
                if labels[start] != UNCLASSIFIED:
                    continue
                neighbors = index.region_query(start, self.eps)
                queries += 1
                if neighbors.size < self.min_pts:
                    labels[start] = NOISE
                    continue
                cluster_id = next_cluster
                next_cluster += 1
                if observer is not None:
                    observer.on_cluster_start(cluster_id, int(start))
                labels[start] = cluster_id
                core_mask[start] = True
                if observer is not None:
                    observer.on_core_point(int(start), cluster_id, neighbors)
                queries += expand(
                    index,
                    neighbors,
                    int(start),
                    cluster_id,
                    labels,
                    core_mask,
                    observer,
                    metrics,
                )
        finally:
            if observe_index:
                # Detached so the registry (which holds a lock) never
                # rides along when the result's index is pickled.
                index.detach_metrics()
        if metrics is not None:
            metrics.inc("dbscan.runs")
            metrics.inc("dbscan.region_queries", queries)
            metrics.observe("dbscan.clusters", next_cluster)
        return DBSCANResult(
            labels=labels,
            core_mask=core_mask,
            eps=self.eps,
            min_pts=self.min_pts,
            n_region_queries=queries,
            index=index,
        )

    def _expand_sequential(
        self,
        index: NeighborIndex,
        neighbors: np.ndarray,
        start: int,
        cluster_id: int,
        labels: np.ndarray,
        core_mask: np.ndarray,
        observer: DBSCANObserver | None,
        metrics=None,
    ) -> int:
        """Classic expansion: one region query per popped seed.

        Returns:
            The number of region queries issued.
        """
        seeds: deque[int] = deque()
        self._absorb(neighbors, cluster_id, labels, seeds, exclude=start)
        queries = 0
        while seeds:
            current = seeds.popleft()
            current_neighbors = index.region_query(current, self.eps)
            queries += 1
            if current_neighbors.size < self.min_pts:
                continue  # border object: keeps its label, expands nothing
            core_mask[current] = True
            if observer is not None:
                observer.on_core_point(current, cluster_id, current_neighbors)
            self._absorb(
                current_neighbors, cluster_id, labels, seeds, exclude=current
            )
        return queries

    def _expand_batched(
        self,
        index: NeighborIndex,
        neighbors: np.ndarray,
        start: int,
        cluster_id: int,
        labels: np.ndarray,
        core_mask: np.ndarray,
        observer: DBSCANObserver | None,
        metrics=None,
    ) -> int:
        """Frontier expansion: one batched region query per BFS round.

        Each round drains the entire seed queue (the frontier), answers it
        with one ``region_query_batch`` call, and applies the results in
        FIFO order — the order :meth:`_expand_sequential` would have used —
        so every observable output is bit-identical to the classic loop.
        Each batch still counts one region query per frontier member to
        keep the paper's cost proxy comparable.

        Returns:
            The number of region queries issued.
        """
        frontier: list[int] = []
        self._absorb_vectorized(neighbors, cluster_id, labels, frontier)
        queries = 0
        while frontier:
            if metrics is not None:
                metrics.observe("dbscan.frontier_batch_size", len(frontier))
            batch = index.region_query_batch(
                np.asarray(frontier, dtype=np.intp), self.eps
            )
            queries += len(frontier)
            next_frontier: list[int] = []
            for current, current_neighbors in zip(frontier, batch):
                if current_neighbors.size < self.min_pts:
                    continue  # border object: keeps its label, expands nothing
                core_mask[current] = True
                if observer is not None:
                    observer.on_core_point(current, cluster_id, current_neighbors)
                self._absorb_vectorized(
                    current_neighbors, cluster_id, labels, next_frontier
                )
            frontier = next_frontier
        return queries

    @staticmethod
    def _absorb(
        neighbors: np.ndarray,
        cluster_id: int,
        labels: np.ndarray,
        seeds: deque[int] | list[int],
        *,
        exclude: int,
    ) -> None:
        """Pull a core point's neighborhood into ``cluster_id``.

        Unclassified neighbors are claimed and scheduled for expansion
        (appended to ``seeds`` in ascending index order — ``neighbors`` is
        sorted); former noise objects become border members (they were
        already proven non-core, so they are not re-expanded).
        """
        for j in neighbors:
            if j == exclude:
                continue
            label = labels[j]
            if label == UNCLASSIFIED:
                labels[j] = cluster_id
                seeds.append(int(j))
            elif label == NOISE:
                labels[j] = cluster_id

    @staticmethod
    def _absorb_vectorized(
        neighbors: np.ndarray,
        cluster_id: int,
        labels: np.ndarray,
        seeds: list[int],
    ) -> None:
        """Vectorized :meth:`_absorb` used by the frontier expansion.

        Equivalent to the scalar loop: the indices within one neighborhood
        are distinct, so claiming all unclassified neighbors (ascending,
        ``neighbors`` is sorted) and then promoting all former-noise ones
        performs the identical label transitions and seed appends.  The
        expanding core point itself is already labeled ``cluster_id``, so
        no ``exclude`` check is needed — it matches neither mask.
        """
        neighbor_labels = labels[neighbors]
        fresh = neighbors[neighbor_labels == UNCLASSIFIED]
        if fresh.size:
            labels[fresh] = cluster_id
            seeds.extend(fresh.tolist())
        former_noise = neighbors[neighbor_labels == NOISE]
        if former_noise.size:
            labels[former_noise] = cluster_id


def dbscan(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    metric: str | Metric = "euclidean",
    index_kind: str = "auto",
    index: NeighborIndex | None = None,
    observer: DBSCANObserver | None = None,
    batched: bool = True,
    metrics=None,
) -> DBSCANResult:
    """Functional one-shot wrapper around :class:`DBSCAN`.

    Args:
        points: array of shape ``(n, d)``.
        eps: neighborhood radius.
        min_pts: density threshold.
        metric: metric name or instance.
        index_kind: neighbor index kind.
        index: optional pre-built index.
        observer: optional run observer.
        batched: frontier-at-a-time expansion (default) or the classic
            one-query-per-seed loop; results are bit-identical.
        metrics: optional :class:`~repro.obs.MetricsRegistry` (see
            :meth:`DBSCAN.fit`).

    Returns:
        A :class:`DBSCANResult`.
    """
    runner = DBSCAN(eps, min_pts, metric=metric, index_kind=index_kind, batched=batched)
    return runner.fit(points, index=index, observer=observer, metrics=metrics)
