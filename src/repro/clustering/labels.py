"""Label conventions and bookkeeping shared by all clustering algorithms.

A *clustering* over ``n`` objects is an integer label array of length ``n``:
non-negative entries are cluster identifiers, :data:`NOISE` (``-1``) marks
noise, and :data:`UNCLASSIFIED` (``-2``) marks objects an algorithm has not
visited yet (never present in finished results).  This mirrors Definition 8
of the paper: clusters are disjoint subsets of the database, noise is
everything else.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

__all__ = [
    "NOISE",
    "UNCLASSIFIED",
    "n_clusters",
    "cluster_ids",
    "cluster_sizes",
    "cluster_members",
    "noise_mask",
    "noise_ratio",
    "compact_labels",
    "relabel",
    "contingency_table",
    "validate_labels",
]

NOISE = -1
UNCLASSIFIED = -2


def validate_labels(labels: np.ndarray) -> np.ndarray:
    """Check and normalize a finished label array.

    Args:
        labels: 1-D integer array.

    Returns:
        The array as ``np.intp``.

    Raises:
        ValueError: if the array is not 1-D or still contains
            :data:`UNCLASSIFIED` entries.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    labels = labels.astype(np.intp, copy=False)
    if labels.size and labels.min() < NOISE:
        raise ValueError("labels contain UNCLASSIFIED entries; clustering unfinished")
    return labels


def cluster_ids(labels: np.ndarray) -> np.ndarray:
    """Sorted array of distinct non-noise cluster identifiers."""
    labels = validate_labels(labels)
    ids = np.unique(labels)
    return ids[ids >= 0]


def n_clusters(labels: np.ndarray) -> int:
    """Number of distinct non-noise clusters."""
    return int(cluster_ids(labels).size)


def cluster_sizes(labels: np.ndarray) -> dict[int, int]:
    """Mapping ``cluster id -> member count`` (noise excluded)."""
    labels = validate_labels(labels)
    counts = Counter(int(label) for label in labels if label >= 0)
    return dict(sorted(counts.items()))


def cluster_members(labels: np.ndarray) -> dict[int, np.ndarray]:
    """Mapping ``cluster id -> sorted member index array`` (noise excluded)."""
    labels = validate_labels(labels)
    return {int(cid): np.flatnonzero(labels == cid) for cid in cluster_ids(labels)}


def noise_mask(labels: np.ndarray) -> np.ndarray:
    """Boolean mask of noise objects."""
    return validate_labels(labels) == NOISE


def noise_ratio(labels: np.ndarray) -> float:
    """Fraction of objects labelled noise (0.0 for an empty array)."""
    labels = validate_labels(labels)
    if labels.size == 0:
        return 0.0
    return float(np.count_nonzero(labels == NOISE)) / labels.size


def compact_labels(labels: np.ndarray) -> np.ndarray:
    """Renumber cluster ids to ``0 .. k-1`` preserving first-appearance order.

    Noise stays :data:`NOISE`.  Useful after merges/relabels have left gaps
    in the id space.
    """
    labels = validate_labels(labels)
    out = np.full(labels.shape, NOISE, dtype=np.intp)
    mapping: dict[int, int] = {}
    for i, label in enumerate(labels):
        if label < 0:
            continue
        if label not in mapping:
            mapping[int(label)] = len(mapping)
        out[i] = mapping[int(label)]
    return out


def relabel(labels: np.ndarray, mapping: dict[int, int]) -> np.ndarray:
    """Apply a cluster-id mapping, leaving unmapped ids (and noise) alone.

    Args:
        labels: finished label array.
        mapping: old id -> new id.

    Returns:
        New label array.
    """
    labels = validate_labels(labels)
    out = labels.copy()
    for i, label in enumerate(labels):
        if label >= 0 and int(label) in mapping:
            out[i] = mapping[int(label)]
    return out


def contingency_table(
    left: np.ndarray, right: np.ndarray
) -> dict[tuple[int, int], int]:
    """Joint label counts of two clusterings over the same objects.

    Args:
        left: first label array (noise allowed).
        right: second label array of the same length.

    Returns:
        Mapping ``(left id, right id) -> count`` including noise pairs
        (noise appears as ``-1``).

    Raises:
        ValueError: on length mismatch.
    """
    left = validate_labels(left)
    right = validate_labels(right)
    if left.shape != right.shape:
        raise ValueError(
            f"label arrays must align, got {left.shape} vs {right.shape}"
        )
    table = Counter(zip(map(int, left), map(int, right)))
    return dict(table)
