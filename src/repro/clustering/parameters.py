"""Parameter selection for DBSCAN: the sorted k-distance heuristic.

The DBDC paper inherits DBSCAN's two parameters and never says how its
``Eps_local``/``MinPts`` were chosen.  The standard recipe (from the
DBSCAN paper, §4.2) is the *sorted k-dist plot*: for ``k = MinPts - 1``,
plot every object's distance to its k-th nearest neighbor in descending
order; the "valley"/knee separates noise (high k-dist) from cluster points
(low k-dist), and the k-dist at the knee is a good ``Eps``.

This module computes the plot and offers two knee estimators:

* :func:`suggest_eps_by_quantile` — the simple practitioner's rule: take
  the k-dist at a noise-share quantile,
* :func:`suggest_eps_by_knee` — the geometric rule: the point of the
  sorted curve farthest from the straight line between its endpoints.
"""

from __future__ import annotations

import numpy as np

from repro.data.distance import Metric, get_metric
from repro.index.kdtree import KDTreeIndex

__all__ = [
    "k_distances",
    "sorted_k_distance_plot",
    "suggest_eps_by_quantile",
    "suggest_eps_by_knee",
    "suggest_parameters",
]


def k_distances(
    points: np.ndarray,
    k: int,
    *,
    metric: str | Metric = "euclidean",
) -> np.ndarray:
    """Distance from every object to its k-th nearest *other* object.

    Args:
        points: array of shape ``(n, d)`` with ``n > k``.
        k: neighbor rank (``k = MinPts - 1`` for the DBSCAN recipe, since
            ``N_Eps`` includes the object itself).
        metric: distance metric (must be kd-tree compatible, i.e. L_p).

    Returns:
        Array of length ``n``.

    Raises:
        ValueError: if ``k`` is out of range.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0] if points.ndim == 2 else 0
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    resolved = get_metric(metric)
    tree = KDTreeIndex(points, resolved, leaf_size=32)
    out = np.empty(n)
    for i in range(n):
        # k+1 nearest including the object itself (distance 0).
        __, dists = tree.knn_query(points[i], k + 1)
        out[i] = dists[-1]
    return out


def sorted_k_distance_plot(
    points: np.ndarray, k: int, *, metric: str | Metric = "euclidean"
) -> np.ndarray:
    """The sorted (descending) k-dist curve of the DBSCAN paper."""
    return np.sort(k_distances(points, k, metric=metric))[::-1]


def suggest_eps_by_quantile(
    points: np.ndarray,
    min_pts: int,
    *,
    noise_share: float = 0.05,
    metric: str | Metric = "euclidean",
) -> float:
    """``Eps`` = the k-dist at the expected noise share.

    Args:
        points: data set.
        min_pts: intended ``MinPts`` (``k = min_pts - 1``).
        noise_share: expected fraction of noise objects; the k-dist curve
            is cut there.
        metric: distance metric.

    Returns:
        The suggested ``Eps``.

    Raises:
        ValueError: for a share outside ``[0, 1)``.
    """
    if not 0 <= noise_share < 1:
        raise ValueError(f"noise_share must be in [0, 1), got {noise_share}")
    curve = sorted_k_distance_plot(points, max(1, min_pts - 1), metric=metric)
    cut = min(curve.size - 1, int(round(noise_share * curve.size)))
    return float(curve[cut])


def suggest_eps_by_knee(
    points: np.ndarray,
    min_pts: int,
    *,
    metric: str | Metric = "euclidean",
) -> float:
    """``Eps`` at the knee of the sorted k-dist curve.

    The knee is the curve point with maximum distance from the chord
    between the first and last points — a parameter-free stand-in for the
    "first valley" the DBSCAN paper asks the user to eyeball.

    Args:
        points: data set.
        min_pts: intended ``MinPts``.
        metric: distance metric.

    Returns:
        The k-dist value at the knee.
    """
    curve = sorted_k_distance_plot(points, max(1, min_pts - 1), metric=metric)
    n = curve.size
    if n < 3:
        return float(curve[-1])
    x = np.arange(n, dtype=float)
    # Normalize both axes so the chord distance is scale-free.
    x_norm = x / (n - 1)
    span = curve[0] - curve[-1]
    y_norm = (curve - curve[-1]) / span if span > 0 else np.zeros(n)
    # Distance from each point to the chord y = 1 - x (after normalization
    # the curve runs from (0, 1) to (1, 0)).
    chord_distance = np.abs(1.0 - x_norm - y_norm) / np.sqrt(2.0)
    knee = int(np.argmax(chord_distance))
    return float(curve[knee])


def suggest_parameters(
    points: np.ndarray,
    *,
    min_pts: int | None = None,
    metric: str | Metric = "euclidean",
) -> tuple[float, int]:
    """One-call heuristic: ``(Eps, MinPts)`` for a data set.

    ``MinPts`` defaults to ``2 * dim`` (the folklore rule the DBSCAN
    authors' ``MinPts = 4`` for 2-D instantiates); ``Eps`` comes from the
    knee of the sorted k-dist curve.

    Args:
        points: data set of shape ``(n, d)``.
        min_pts: fixed ``MinPts`` (``None`` → ``2 * d``).
        metric: distance metric.

    Returns:
        ``(eps, min_pts)``.
    """
    points = np.asarray(points, dtype=float)
    if min_pts is None:
        min_pts = max(3, 2 * points.shape[1])
    eps = suggest_eps_by_knee(points, min_pts, metric=metric)
    return eps, int(min_pts)
