"""OPTICS (Ankerst et al., SIGMOD'99) — hierarchical density ordering.

Section 6 of the DBDC paper discusses OPTICS as an alternative way to build
the *global* model: cluster the representatives once, then let the user cut
the reachability plot at any ``Eps_global`` without re-running the
clustering.  The paper refrains from it for its mainline (relabeling and
quantitative evaluation get harder) but we implement it as the documented
extension: :func:`optics` produces the ordering, and
:func:`extract_dbscan_clustering` cuts it at an arbitrary ``eps' <= eps``,
yielding a clustering nearly identical to a DBSCAN run at ``eps'``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.clustering.labels import NOISE
from repro.data.distance import Metric, get_metric
from repro.index import NeighborIndex, build_index

__all__ = ["OPTICSResult", "optics", "extract_dbscan_clustering"]

UNDEFINED = np.inf


@dataclass
class OPTICSResult:
    """Outcome of an OPTICS run.

    Attributes:
        ordering: object indices in OPTICS visit order.
        reachability: reachability distance per object (aligned with object
            index, not with ordering); ``inf`` where undefined.
        core_distance: core distance per object; ``inf`` for non-core.
        eps: generating radius.
        min_pts: density threshold.
    """

    ordering: np.ndarray
    reachability: np.ndarray
    core_distance: np.ndarray
    eps: float
    min_pts: int

    def reachability_plot(self) -> np.ndarray:
        """Reachability values in visit order (the classic OPTICS plot)."""
        return self.reachability[self.ordering]


def optics(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    *,
    metric: str | Metric = "euclidean",
    index_kind: str = "auto",
    index: NeighborIndex | None = None,
) -> OPTICSResult:
    """Compute the OPTICS ordering of ``points``.

    Args:
        points: array of shape ``(n, d)``.
        eps: generating radius (upper bound for later cuts).
        min_pts: density threshold (neighborhood cardinality incl. self).
        metric: metric name or instance.
        index_kind: neighbor index kind for region queries.
        index: optional pre-built index over the same points.

    Returns:
        An :class:`OPTICSResult`.

    Raises:
        ValueError: for non-positive ``eps`` or ``min_pts < 1``.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if min_pts < 1:
        raise ValueError(f"min_pts must be >= 1, got {min_pts}")
    points = np.asarray(points, dtype=float)
    n = points.shape[0] if points.ndim == 2 else 0
    resolved = get_metric(metric)
    if index is None:
        index = build_index(points, index_kind, metric=resolved, eps=eps)
    reachability = np.full(n, UNDEFINED)
    core_distance = np.full(n, UNDEFINED)
    processed = np.zeros(n, dtype=bool)
    ordering: list[int] = []

    def neighbors_of(i: int) -> tuple[np.ndarray, np.ndarray]:
        idx = index.region_query(i, eps)
        dists = resolved.to_many(points[i], points[idx])
        return idx, dists

    for start in range(n):
        if processed[start]:
            continue
        seeds: list[tuple[float, int]] = []
        stale: dict[int, float] = {}

        def process(i: int) -> None:
            processed[i] = True
            ordering.append(i)
            idx, dists = neighbors_of(i)
            if idx.size >= min_pts:
                core_distance[i] = float(np.partition(dists, min_pts - 1)[min_pts - 1])
                core = core_distance[i]
                for j, dist in zip(idx, dists):
                    if processed[j]:
                        continue
                    new_reach = max(core, float(dist))
                    if new_reach < reachability[j]:
                        reachability[j] = new_reach
                        stale[int(j)] = new_reach
                        heapq.heappush(seeds, (new_reach, int(j)))

        process(start)
        while seeds:
            reach, j = heapq.heappop(seeds)
            if processed[j] or stale.get(j, reach) != reach:
                continue
            process(j)
    return OPTICSResult(
        ordering=np.asarray(ordering, dtype=np.intp),
        reachability=reachability,
        core_distance=core_distance,
        eps=float(eps),
        min_pts=int(min_pts),
    )


def extract_dbscan_clustering(result: OPTICSResult, eps_cut: float) -> np.ndarray:
    """Cut an OPTICS ordering at ``eps_cut``, producing a flat clustering.

    Implements the *ExtractDBSCAN-Clustering* procedure of the OPTICS paper:
    walking the ordering, a reachability above ``eps_cut`` starts a new
    cluster if the object itself is core at ``eps_cut``, otherwise marks
    noise; reachable objects join the current cluster.

    Args:
        result: an :class:`OPTICSResult` with ``eps >= eps_cut``.
        eps_cut: the cut radius.

    Returns:
        Label array (noise = -1), equivalent to DBSCAN at ``eps_cut`` up to
        border-point ambiguity.

    Raises:
        ValueError: if ``eps_cut`` exceeds the generating radius.
    """
    if eps_cut > result.eps:
        raise ValueError(
            f"eps_cut {eps_cut} exceeds the generating eps {result.eps}"
        )
    n = result.ordering.size
    labels = np.full(n, NOISE, dtype=np.intp)
    cluster_id = -1
    for obj in result.ordering:
        if result.reachability[obj] > eps_cut:
            if result.core_distance[obj] <= eps_cut:
                cluster_id += 1
                labels[obj] = cluster_id
            else:
                labels[obj] = NOISE
        else:
            labels[obj] = cluster_id
    return labels
