"""Incremental DBSCAN (Ester et al., VLDB'98 style).

The DBDC paper leans on this algorithm twice:

* Section 4 lists the existence of "an efficient incremental version" as a
  reason for choosing DBSCAN locally — a site only re-transmits its local
  model when its clustering changed considerably;
* Section 6 notes the server "can start with the construction of the global
  model after the first representatives of any local model come in", i.e.
  the global clustering is maintained incrementally as representatives
  arrive.

:class:`IncrementalDBSCAN` maintains a DBSCAN clustering under point
insertions and deletions.  Insertions can create, absorb into, or *merge*
clusters; deletions can shrink, dissolve, or *split* clusters.  The
maintained labelling always equals some from-scratch DBSCAN run over the
current point set (cluster ids and order-dependent border assignments may
differ, the partition structure does not — the property tests assert this).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.clustering.labels import NOISE
from repro.data.distance import Metric, get_metric
from repro.index.dynamic import DynamicGridIndex

__all__ = ["IncrementalDBSCAN"]


class IncrementalDBSCAN:
    """Maintain a DBSCAN clustering under inserts and deletes.

    Args:
        eps: neighborhood radius.
        min_pts: density threshold (neighborhood cardinality incl. self).
        dim: point dimensionality.
        metric: ``L_p``-style metric (the dynamic grid requires one).

    Attributes are exposed via accessors; point indices are the stable ids
    returned by :meth:`insert`.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        dim: int,
        *,
        metric: str | Metric = "euclidean",
    ) -> None:
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_pts < 1:
            raise ValueError(f"min_pts must be >= 1, got {min_pts}")
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.metric = get_metric(metric)
        self._grid = DynamicGridIndex(dim, cell_size=self.eps, metric=self.metric)
        self._labels: dict[int, int] = {}
        self._core: dict[int, bool] = {}
        self._next_cluster = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._grid)

    def label_of(self, index: int) -> int:
        """Cluster id of a live point (``NOISE`` for noise)."""
        return self._labels[index]

    def is_core(self, index: int) -> bool:
        """Whether the live point ``index`` currently is a core object."""
        return self._core[index]

    def live_indices(self) -> np.ndarray:
        """Stable indices of all live points, sorted."""
        return self._grid.live_indices()

    def points(self) -> np.ndarray:
        """Coordinates of all live points, ordered by :meth:`live_indices`."""
        idx = self.live_indices()
        if idx.size == 0:
            return np.empty((0, 0))
        return np.asarray([self._grid.point(i) for i in idx])

    def labels(self) -> np.ndarray:
        """Labels of all live points, ordered by :meth:`live_indices`."""
        return np.asarray([self._labels[i] for i in self.live_indices()], dtype=np.intp)

    def cluster_count(self) -> int:
        """Number of distinct non-noise clusters."""
        return len({label for label in self._labels.values() if label >= 0})

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, point: np.ndarray) -> int:
        """Insert ``point`` and repair the clustering.

        Returns:
            The new point's stable index.
        """
        idx = self._grid.insert(np.asarray(point, dtype=float))
        neighbors = self._grid.region_query(idx, self.eps)
        self._labels[idx] = NOISE
        self._core[idx] = neighbors.size >= self.min_pts

        # Core properties can only be gained on insertion, and only by the
        # new point's neighbors (their neighborhood grew by exactly one).
        newly_core: list[int] = []
        for q in neighbors:
            q = int(q)
            if q == idx or self._core[q]:
                continue
            if self._grid.region_query(q, self.eps).size >= self.min_pts:
                self._core[q] = True
                newly_core.append(q)
        if self._core[idx]:
            newly_core.append(idx)

        if not newly_core:
            # No core property changed: the new point is border or noise.
            core_neighbors = [int(q) for q in neighbors if self._core[int(q)]]
            if core_neighbors:
                self._labels[idx] = self._label_of_nearest_core(idx, core_neighbors)
            return idx

        # One insertion can create several *disconnected* groups of new
        # core points (e.g. a non-core arrival whose neighborhood pushes
        # two far-apart neighbors over MinPts) — each group merges only
        # the clusters it actually touches.  Components are traced over
        # core-core eps links through the NEW cores; links between two
        # old cores existed before the insertion, so their clusters are
        # already merged and traversal can stop at them (their label is
        # collected for the wholesale relabel instead).
        newly_core_set = set(newly_core)
        processed: set[int] = set()
        for changed in newly_core:
            if changed in processed:
                continue
            component = {changed}
            frontier = [changed]
            touched: set[int] = set()
            if self._labels[changed] >= 0:
                touched.add(int(self._labels[changed]))
            while frontier:
                current = frontier.pop()
                for q in self._grid.region_query(current, self.eps):
                    q = int(q)
                    if not self._core[q] or q in component:
                        continue
                    if q in newly_core_set:
                        component.add(q)
                        frontier.append(q)
                        if self._labels[q] >= 0:
                            touched.add(int(self._labels[q]))
                    elif self._labels[q] >= 0:
                        # Old core: merge its whole cluster, no traversal.
                        touched.add(int(self._labels[q]))
            if touched:
                target = min(touched)
                for other in touched - {target}:
                    self._relabel_cluster(other, target)
            else:
                target = self._next_cluster
                self._next_cluster += 1
            self._expand_cores(component, target)
            processed |= component

        if not self._core[idx] and self._labels[idx] == NOISE:
            # The new point itself may be a border of a (possibly fresh)
            # cluster even when it triggered no merge near itself.
            core_neighbors = [int(q) for q in neighbors if self._core[int(q)]]
            if core_neighbors:
                self._labels[idx] = self._label_of_nearest_core(idx, core_neighbors)
        return idx

    def _label_of_nearest_core(self, idx: int, core_neighbors: list[int]) -> int:
        point = self._grid.point(idx)
        pts = np.asarray([self._grid.point(q) for q in core_neighbors])
        distances = self.metric.to_many(point, pts)
        return self._labels[core_neighbors[int(np.argmin(distances))]]

    def _relabel_cluster(self, old: int, new: int) -> None:
        for key, label in self._labels.items():
            if label == old:
                self._labels[key] = new

    def _expand_cores(self, seeds: set[int], target: int) -> None:
        """BFS over density-connected cores, claiming borders along the way."""
        queue: deque[int] = deque(seeds)
        visited = set(seeds)
        while queue:
            core = queue.popleft()
            self._labels[core] = target
            for q in self._grid.region_query(core, self.eps):
                q = int(q)
                if self._core[q]:
                    if q not in visited and self._labels[q] != target:
                        visited.add(q)
                        queue.append(q)
                elif self._labels[q] == NOISE:
                    self._labels[q] = target

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def delete(self, index: int) -> None:
        """Remove the live point ``index`` and repair the clustering.

        Deletion can demote cores, orphan borders, dissolve clusters and —
        the expensive case — split one cluster into several; the affected
        clusters are re-derived locally from the surviving core objects.

        Raises:
            KeyError: for dead/unknown indices.
        """
        neighbors = [int(q) for q in self._grid.region_query(index, self.eps) if int(q) != index]
        old_label = self._labels.pop(index)
        was_core = self._core.pop(index)
        self._grid.remove(index)

        # Cores can only be lost, and only by the removed point's neighbors.
        lost_core: list[int] = []
        for q in neighbors:
            if self._core[q] and self._grid.region_query(q, self.eps).size < self.min_pts:
                self._core[q] = False
                lost_core.append(q)

        if not was_core and not lost_core:
            return  # a border/noise point left; no reachability changed

        # Every cluster that contained the removed point or a demoted core
        # must be rebuilt from its surviving cores (splits show up here).
        affected = {old_label} | {self._labels[q] for q in lost_core}
        affected.discard(NOISE)
        if not affected:
            return
        members = [
            key for key, label in self._labels.items() if label in affected
        ]
        self._rebuild_clusters(members)

    def _rebuild_clusters(self, members: list[int]) -> None:
        """Re-derive cluster structure for ``members`` from scratch.

        Core flags are already up to date; this only re-runs the
        connected-component expansion (Lemmas 1 and 2 of the DBSCAN paper:
        a cluster is uniquely determined by any of its core objects).
        """
        member_set = set(members)
        for key in members:
            self._labels[key] = NOISE
        unvisited_cores = {key for key in members if self._core[key]}
        non_cores = [key for key in members if not self._core[key]]
        while unvisited_cores:
            seed = unvisited_cores.pop()
            target = self._next_cluster
            self._next_cluster += 1
            queue: deque[int] = deque([seed])
            visited = {seed}
            while queue:
                core = queue.popleft()
                self._labels[core] = target
                for q in self._grid.region_query(core, self.eps):
                    q = int(q)
                    if self._core[q]:
                        if q not in visited:
                            visited.add(q)
                            queue.append(q)
                            unvisited_cores.discard(q)
                    elif q in member_set and self._labels[q] == NOISE:
                        self._labels[q] = target
        # A demoted member may border a core of an *unaffected* cluster:
        # it must become that cluster's border object, not noise.
        for key in non_cores:
            if self._labels[key] != NOISE:
                continue
            core_neighbors = [
                int(q)
                for q in self._grid.region_query(key, self.eps)
                if self._core[int(q)]
            ]
            if core_neighbors:
                self._labels[key] = self._label_of_nearest_core(key, core_neighbors)
