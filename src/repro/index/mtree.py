"""A from-scratch M-tree for general metric spaces.

The paper stresses that DBSCAN "can be used for all kinds of metric data
spaces and is not confined to vector spaces" (§4) and names the M-tree
[Ciaccia/Patella/Zezula, VLDB'97] as the access method for that case.  The
grid, kd-tree and R-tree in this package all exploit coordinate axes; the
M-tree only ever calls the metric, so it works for *any* distance that
satisfies the triangle inequality (e.g. haversine on coordinates, or a
kernel-induced metric).

This is the bulk-loaded variant: leaf entries store objects with their
distance to the parent routing object; inner nodes store routing objects
with covering radii.  Range queries prune with the classic M-tree
inequality ``|d(q, parent) - d(parent, child)| > eps + r_child``.
"""

from __future__ import annotations

import numpy as np

from repro.data.distance import Metric
from repro.index.base import NeighborIndex

__all__ = ["MTreeIndex"]


class _MNode:
    """M-tree node: a routing object, covering radius, and children."""

    __slots__ = ("router", "radius", "children", "entries", "entry_dists")

    def __init__(
        self,
        router: int,
        radius: float,
        children: list["_MNode"] | None,
        entries: np.ndarray | None,
        entry_dists: np.ndarray | None,
    ) -> None:
        self.router = router
        self.radius = radius
        self.children = children
        self.entries = entries
        self.entry_dists = entry_dists

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class MTreeIndex(NeighborIndex):
    """Bulk-loaded M-tree over a static point set.

    Only metric properties are used — no coordinate arithmetic — so any
    registered :class:`~repro.data.distance.Metric` obeying the triangle
    inequality works.

    Args:
        points: array of shape ``(n, d)`` (rows are opaque objects to the
            tree; only the metric interprets them).
        metric: distance metric (must satisfy the triangle inequality).
        node_capacity: max objects per leaf / children per inner node.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: str | Metric = "euclidean",
        *,
        node_capacity: int = 32,
    ) -> None:
        super().__init__(points, metric)
        if node_capacity < 2:
            raise ValueError(f"node_capacity must be >= 2, got {node_capacity}")
        self._capacity = int(node_capacity)
        self._root: _MNode | None = None
        if len(self):
            self._root = self._build(np.arange(len(self), dtype=np.intp))

    # ------------------------------------------------------------------
    # bulk load: recursive k-router partitioning
    # ------------------------------------------------------------------
    def _distances(self, router: int, members: np.ndarray) -> np.ndarray:
        return self._metric.to_many(self._points[router], self._points[members])

    def _build(self, members: np.ndarray) -> _MNode:
        router = int(members[0])
        dists = self._distances(router, members)
        if members.size <= self._capacity:
            return _MNode(
                router=router,
                radius=float(dists.max()) if dists.size else 0.0,
                children=None,
                entries=members,
                entry_dists=dists,
            )
        # Pick up to `capacity` routers spread out by a farthest-first
        # sweep, then assign every member to its nearest router.
        n_groups = min(self._capacity, max(2, members.size // self._capacity))
        routers = [router]
        router_dists = [dists]
        min_dist = dists.copy()
        for __ in range(n_groups - 1):
            farthest = int(np.argmax(min_dist))
            candidate = int(members[farthest])
            if min_dist[farthest] == 0.0:
                break  # all remaining members coincide with a router
            routers.append(candidate)
            cand_dists = self._distances(candidate, members)
            router_dists.append(cand_dists)
            min_dist = np.minimum(min_dist, cand_dists)
        if len(routers) == 1:
            # All members coincide: recursion cannot shrink the set, so
            # chunk them into capacity-sized leaves directly.
            children = [
                _MNode(
                    router=router,
                    radius=0.0,
                    children=None,
                    entries=members[start : start + self._capacity],
                    entry_dists=dists[start : start + self._capacity],
                )
                for start in range(0, members.size, self._capacity)
            ]
            return _MNode(router, 0.0, children, None, None)
        stacked = np.vstack(router_dists)  # (n_routers, n_members)
        assignment = stacked.argmin(axis=0)
        children = []
        for g in range(len(routers)):
            group = members[assignment == g]
            if group.size == 0:
                continue
            # Ensure the group's router leads the array so _build reuses it.
            router_pos = int(np.flatnonzero(group == routers[g])[0])
            group[0], group[router_pos] = group[router_pos], group[0]
            children.append(self._build(group))
        radius = float(dists.max())
        return _MNode(
            router=router,
            radius=radius,
            children=children,
            entries=None,
            entry_dists=None,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of levels (0 for an empty tree)."""
        node, levels = self._root, 0
        while node is not None:
            levels += 1
            node = None if node.is_leaf else node.children[0]
        return levels

    def range_query(self, query: np.ndarray, eps: float) -> np.ndarray:
        if self._root is None:
            return np.empty(0, dtype=np.intp)
        query = np.asarray(query, dtype=float)
        hits: list[np.ndarray] = []
        # Stack of (node, distance from query to the node's router).
        root_dist = float(self._metric.pairwise(query, self._points[self._root.router]))
        stack: list[tuple[_MNode, float]] = [(self._root, root_dist)]
        while stack:
            node, d_router = stack.pop()
            # Covering-radius pruning: nothing in this subtree can be
            # within eps if the query is farther than radius + eps.
            if d_router > node.radius + eps:
                continue
            if node.is_leaf:
                # Pre-filter by |d(q,router) - d(router,entry)| <= eps
                # before paying for exact distances.
                plausible = np.abs(node.entry_dists - d_router) <= eps
                candidates = node.entries[plausible]
                if candidates.size:
                    exact = self._metric.to_many(query, self._points[candidates])
                    match = candidates[exact <= eps]
                    if match.size:
                        hits.append(match)
                continue
            for child in node.children:
                d_child = float(
                    self._metric.pairwise(query, self._points[child.router])
                )
                stack.append((child, d_child))
        if not hits:
            return np.empty(0, dtype=np.intp)
        out = np.concatenate(hits)
        out.sort()
        return out
