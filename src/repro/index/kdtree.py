"""A from-scratch kd-tree supporting exact range and kNN queries.

Stands in for the R*-tree the paper uses as DBSCAN's spatial access method:
build once, then answer ``Eps``-range queries in expected
``O(log n + answer)`` for low-dimensional data.  The tree stores points in a
flat, implicitly-linked node array (no Python object per node) and prunes
subtrees with axis-aligned bounding boxes, so it is exact for every metric
whose balls are contained in their ``L_inf`` cube (all ``L_p`` metrics).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.data.distance import Metric
from repro.index.base import NeighborIndex, _as_query_batch

__all__ = ["KDTreeIndex"]

_LEAF = -1


class KDTreeIndex(NeighborIndex):
    """Median-split kd-tree over a static point set.

    Args:
        points: array of shape ``(n, d)``.
        metric: any ``L_p``-style metric (euclidean, manhattan, chebyshev,
            minkowski).  Pruning uses per-axis distances, which lower-bound
            all of these.
        leaf_size: maximum number of points stored in a leaf before the
            builder stops splitting.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: str | Metric = "euclidean",
        *,
        leaf_size: int = 16,
    ) -> None:
        super().__init__(points, metric)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self._leaf_size = int(leaf_size)
        n = len(self)
        # Node storage: for node k, children at 2k+1 / 2k+2 do not work for
        # unbalanced median trees, so nodes carry explicit child ids.
        self._split_dim: list[int] = []
        self._split_val: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._leaf_slices: list[tuple[int, int]] = []
        self._order = np.arange(n, dtype=np.intp)
        if n:
            self._root = self._build(0, n, depth=0)
        else:
            self._root = _LEAF

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_node(self) -> int:
        self._split_dim.append(-1)
        self._split_val.append(0.0)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._leaf_slices.append((0, 0))
        return len(self._split_dim) - 1

    def _build(self, start: int, stop: int, depth: int) -> int:
        node = self._new_node()
        count = stop - start
        segment = self._order[start:stop]
        pts = self._points[segment]
        if count <= self._leaf_size:
            self._leaf_slices[node] = (start, stop)
            return node
        spread = pts.max(axis=0) - pts.min(axis=0)
        dim = int(np.argmax(spread))
        if spread[dim] == 0.0:
            # All points identical along every axis: keep as one leaf.
            self._leaf_slices[node] = (start, stop)
            return node
        mid = count // 2
        local = np.argpartition(pts[:, dim], mid)
        self._order[start:stop] = segment[local]
        split_value = float(self._points[self._order[start + mid], dim])
        self._split_dim[node] = dim
        self._split_val[node] = split_value
        self._left[node] = self._build(start, start + mid, depth + 1)
        self._right[node] = self._build(start + mid, stop, depth + 1)
        return node

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_query(self, query: np.ndarray, eps: float) -> np.ndarray:
        if len(self) == 0:
            return np.empty(0, dtype=np.intp)
        query = np.asarray(query, dtype=float)
        hits: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            dim = self._split_dim[node]
            if dim == -1:
                start, stop = self._leaf_slices[node]
                segment = self._order[start:stop]
                distances = self._metric.to_many(query, self._points[segment])
                match = segment[distances <= eps]
                if match.size:
                    hits.append(match)
                continue
            delta = query[dim] - self._split_val[node]
            # A child can only contain points within eps of the query if the
            # query's eps-cube crosses the splitting hyperplane.
            if delta <= eps:
                stack.append(self._left[node])
            if delta >= -eps:
                stack.append(self._right[node])
        if not hits:
            return np.empty(0, dtype=np.intp)
        out = np.concatenate(hits)
        out.sort()
        return out

    def range_query_batch(self, queries: np.ndarray, eps: float) -> list[np.ndarray]:
        """Batched range queries via one shared tree traversal.

        The whole query group descends the tree together: at every split
        node the group is partitioned with vectorized comparisons, and each
        leaf evaluates all queries that reach it with a single distance-
        matrix call.  Every query visits exactly the leaves the single-query
        traversal would visit, so results are identical.
        """
        dim = self._points.shape[1] if self._points.ndim == 2 else 0
        queries = _as_query_batch(queries, dim)
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        empty = np.empty(0, dtype=np.intp)
        if len(self) == 0:
            return [empty for _ in range(n_queries)]
        hits: list[list[np.ndarray]] = [[] for _ in range(n_queries)]
        stack: list[tuple[int, np.ndarray]] = [
            (self._root, np.arange(n_queries, dtype=np.intp))
        ]
        while stack:
            node, group = stack.pop()
            dim_ = self._split_dim[node]
            if dim_ == -1:
                start, stop = self._leaf_slices[node]
                segment = self._order[start:stop]
                distances = self._metric.matrix(queries[group], self._points[segment])
                rows, cols = np.nonzero(distances <= eps)
                bounds = np.searchsorted(rows, np.arange(group.size + 1))
                for r in range(group.size):
                    match = segment[cols[bounds[r]:bounds[r + 1]]]
                    if match.size:
                        hits[group[r]].append(match)
                continue
            delta = queries[group, dim_] - self._split_val[node]
            left = group[delta <= eps]
            right = group[delta >= -eps]
            if left.size:
                stack.append((self._left[node], left))
            if right.size:
                stack.append((self._right[node], right))
        out: list[np.ndarray] = []
        for parts in hits:
            if not parts:
                out.append(empty)
                continue
            merged = np.concatenate(parts)
            merged.sort()
            out.append(merged)
        return out

    def knn_query(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest indexed points to ``query``.

        Args:
            query: point of shape ``(d,)``.
            k: number of neighbors; clipped to the index size.

        Returns:
            ``(indices, distances)`` sorted by ascending distance.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        n = len(self)
        if n == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, np.empty(0, dtype=float)
        k = min(k, n)
        query = np.asarray(query, dtype=float)
        # Max-heap of (-distance, index) holding the best k found so far.
        best: list[tuple[float, int]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            dim = self._split_dim[node]
            if dim == -1:
                start, stop = self._leaf_slices[node]
                segment = self._order[start:stop]
                distances = self._metric.to_many(query, self._points[segment])
                for dist, idx in zip(distances, segment):
                    if len(best) < k:
                        heapq.heappush(best, (-float(dist), int(idx)))
                    elif dist < -best[0][0]:
                        heapq.heapreplace(best, (-float(dist), int(idx)))
                continue
            radius = np.inf if len(best) < k else -best[0][0]
            delta = query[dim] - self._split_val[node]
            if delta <= radius:
                stack.append(self._left[node])
            if delta >= -radius:
                stack.append(self._right[node])
        best.sort(key=lambda item: -item[0])
        indices = np.asarray([idx for __, idx in best], dtype=np.intp)
        distances = np.asarray([-d for d, __ in best], dtype=float)
        return indices, distances
