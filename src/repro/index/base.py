"""The neighbor-index abstraction used by DBSCAN and OPTICS.

The original DBDC/DBSCAN implementations perform their region queries through
a spatial access method (the paper uses R*-trees for vector data and mentions
M-trees for metric data).  Everything in this reproduction that needs an
``Eps``-range query goes through the small :class:`NeighborIndex` protocol
defined here, so the index can be swapped (brute force, uniform grid,
kd-tree, R-tree) without touching the clustering code.

An index is built once over an immutable point set and answers:

* ``region_query(i, eps)`` — indices of all points within distance ``eps``
  of the *indexed* point ``i`` (including ``i`` itself, matching the
  definition of ``N_Eps(q)`` in the paper),
* ``range_query(q, eps)`` — same for an arbitrary query point ``q``,
* ``range_query_batch(Q, eps)`` / ``region_query_batch(indices, eps)`` —
  the batched forms: one call answers a whole group of queries and returns
  one index array per query.  The generic fallback defined here simply
  loops; :class:`~repro.index.brute.BruteForceIndex`,
  :class:`~repro.index.grid.GridIndex` and
  :class:`~repro.index.kdtree.KDTreeIndex` override it with genuinely
  vectorized sweeps.  Batched results are contractually identical
  (element-wise ``array_equal``) to the per-query results — DBSCAN's
  frontier expansion relies on this.
"""

from __future__ import annotations

import abc
import time

import numpy as np

from repro.data.distance import Metric, get_metric

__all__ = ["NeighborIndex"]


def _as_query_batch(queries: np.ndarray, dim: int) -> np.ndarray:
    """Normalize a batch of query points to a float array of shape ``(q, d)``.

    Accepts an empty list/array (→ shape ``(0, dim)``) so callers can issue
    degenerate batches without special-casing.
    """
    out = np.asarray(queries, dtype=float)
    if out.size == 0:
        return np.empty((0, dim), dtype=float)
    if out.ndim != 2:
        raise ValueError(f"queries must be a 2-D array, got shape {out.shape}")
    return out


class NeighborIndex(abc.ABC):
    """Abstract exact ``Eps``-neighborhood index over a fixed point set.

    Subclasses index ``points`` (shape ``(n, d)``) under ``metric`` at
    construction time.  All queries are *exact*: approximate indexes would
    change DBSCAN's output and are out of scope for the reproduction.

    A :class:`~repro.obs.MetricsRegistry` can be attached with
    :meth:`attach_metrics`; region-level queries then record counts, batch
    sizes, neighborhood sizes and accumulated query seconds (see
    ``docs/observability.md``).  With nothing attached (the default) the
    query paths pay a single ``None`` check and allocate nothing.
    """

    # Class-level default so existing subclass constructors need no
    # changes and unattached instances carry no extra state.
    _obs_metrics = None

    def __init__(self, points: np.ndarray, metric: str | Metric = "euclidean") -> None:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError(f"points must be a 2-D array, got shape {points.shape}")
        self._points = points
        self._metric = get_metric(metric)

    @property
    def points(self) -> np.ndarray:
        """The indexed point set (read-only view)."""
        return self._points

    @property
    def metric(self) -> Metric:
        """Metric the index was built under."""
        return self._metric

    def __len__(self) -> int:
        return self._points.shape[0]

    def attach_metrics(self, metrics) -> None:
        """Record region-query metrics into ``metrics`` from now on."""
        self._obs_metrics = metrics

    def detach_metrics(self) -> None:
        """Stop recording (also drops the registry before pickling)."""
        self._obs_metrics = None

    def _record_queries(
        self, n: int, seconds: float, neighbor_counts, *, batch: bool = False
    ) -> None:
        """Record ``n`` region queries answered in ``seconds``."""
        metrics = self._obs_metrics
        metrics.inc("index.region_queries", n)
        metrics.inc("index.query_seconds", seconds)
        if batch:
            metrics.inc("index.batch_queries")
            metrics.observe("index.batch_size", n)
        for count in neighbor_counts:
            metrics.observe("index.neighbors_per_query", count)

    def region_query(self, index: int, eps: float) -> np.ndarray:
        """``N_Eps`` of an indexed point.

        Args:
            index: row index of the query point in the indexed set.
            eps: neighborhood radius (inclusive).

        Returns:
            Sorted integer array of neighbor indices; always contains
            ``index`` itself (a point is in its own ``Eps``-neighborhood).
        """
        if self._obs_metrics is None:
            return self.range_query(self._points[index], eps)
        start = time.perf_counter()
        neighbors = self.range_query(self._points[index], eps)
        self._record_queries(
            1, time.perf_counter() - start, (neighbors.size,)
        )
        return neighbors

    @abc.abstractmethod
    def range_query(self, query: np.ndarray, eps: float) -> np.ndarray:
        """Indices of all indexed points within ``eps`` of ``query``.

        Args:
            query: point of shape ``(d,)``; need not be part of the index.
            eps: neighborhood radius (inclusive).

        Returns:
            Sorted integer array of matching indices.
        """

    def range_query_batch(self, queries: np.ndarray, eps: float) -> list[np.ndarray]:
        """Answer many range queries at once.

        The generic fallback loops over :meth:`range_query`; subclasses
        override it with vectorized group evaluation.  Results are
        guaranteed identical to issuing the queries one at a time.

        Args:
            queries: array of shape ``(q, d)`` (an empty array is allowed
                and yields an empty list).
            eps: neighborhood radius (inclusive), shared by all queries.

        Returns:
            A list of ``q`` sorted integer index arrays, one per query row.
        """
        dim = self._points.shape[1] if self._points.ndim == 2 else 0
        queries = _as_query_batch(queries, dim)
        return [self.range_query(query, eps) for query in queries]

    def region_query_batch(self, indices: np.ndarray, eps: float) -> list[np.ndarray]:
        """``N_Eps`` of many indexed points at once.

        Args:
            indices: integer array of row indices into the indexed set.
            eps: neighborhood radius (inclusive), shared by all queries.

        Returns:
            A list of sorted integer index arrays, one per entry of
            ``indices``; element ``k`` equals ``region_query(indices[k], eps)``.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size == 0:
            return []
        if self._obs_metrics is None:
            return self.range_query_batch(self._points[indices], eps)
        start = time.perf_counter()
        results = self.range_query_batch(self._points[indices], eps)
        self._record_queries(
            len(results),
            time.perf_counter() - start,
            [result.size for result in results],
            batch=True,
        )
        return results

    def count_in_range(self, query: np.ndarray, eps: float) -> int:
        """Number of indexed points within ``eps`` of ``query``."""
        return int(self.range_query(query, eps).size)
