"""Exact spatial indexes for ``Eps``-range queries.

DBSCAN's region queries are served by one of four interchangeable exact
structures, all built from scratch:

* :class:`~repro.index.brute.BruteForceIndex` — linear scan oracle,
* :class:`~repro.index.grid.GridIndex` — uniform grid, cell size = ``Eps``,
* :class:`~repro.index.kdtree.KDTreeIndex` — median-split kd-tree,
* :class:`~repro.index.rtree.RTreeIndex` — STR bulk-loaded R-tree (the
  structure family the paper used).

Use :func:`~repro.index.factory.build_index` to construct one by name.

All indexes also answer *batched* queries (``range_query_batch`` /
``region_query_batch``): brute, grid and kd-tree override the generic
fallback with vectorized group evaluation, which is what DBSCAN's
frontier-parallel expansion rides on (see ``docs/performance.md``).
"""

from repro.index.base import NeighborIndex
from repro.index.brute import BruteForceIndex
from repro.index.factory import available_indexes, build_index
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTreeIndex
from repro.index.mtree import MTreeIndex
from repro.index.rtree import RTreeIndex

__all__ = [
    "NeighborIndex",
    "BruteForceIndex",
    "GridIndex",
    "KDTreeIndex",
    "MTreeIndex",
    "RTreeIndex",
    "build_index",
    "available_indexes",
]
