"""Index construction by name, plus the automatic default used by DBSCAN.

Clustering code never instantiates a concrete index class directly; it calls
:func:`build_index` with a configured name (``"grid"``, ``"kdtree"``,
``"rtree"``, ``"brute"`` or ``"auto"``).  ``"auto"`` picks the uniform grid
when the metric allows it and a sensible cell size is known (DBSCAN passes
its ``Eps``), otherwise the kd-tree, otherwise brute force — mirroring how
the original system would fall back from R*-tree to sequential scan.
"""

from __future__ import annotations

import numpy as np

from repro.data.distance import Metric, get_metric
from repro.index.base import NeighborIndex
from repro.index.brute import BruteForceIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTreeIndex
from repro.index.mtree import MTreeIndex
from repro.index.rtree import RTreeIndex

__all__ = ["build_index", "available_indexes"]

_GRID_OK = {"euclidean", "manhattan", "chebyshev", "squared_euclidean"}
_TREE_OK = _GRID_OK | set()  # kd-tree/R-tree prune with L_inf cubes: same family


def available_indexes() -> list[str]:
    """Names accepted by :func:`build_index`."""
    return ["auto", "brute", "grid", "kdtree", "rtree", "mtree"]


def build_index(
    points: np.ndarray,
    kind: str = "auto",
    *,
    metric: str | Metric = "euclidean",
    eps: float | None = None,
    leaf_size: int = 16,
    node_capacity: int = 32,
) -> NeighborIndex:
    """Build a neighbor index over ``points``.

    Args:
        points: array of shape ``(n, d)``.
        kind: one of :func:`available_indexes`.
        metric: metric name or instance.
        eps: typical query radius; required cell size hint for ``"grid"``
            and used by ``"auto"`` to prefer the grid.
        leaf_size: kd-tree leaf size.
        node_capacity: R-tree fanout.

    Returns:
        A ready-to-query :class:`~repro.index.base.NeighborIndex`.

    Raises:
        ValueError: unknown ``kind`` or ``grid`` requested without ``eps``.
    """
    resolved = get_metric(metric)
    points = np.asarray(points, dtype=float)
    if kind == "auto":
        if resolved.name in _GRID_OK and eps is not None and eps > 0 and len(points):
            return GridIndex(points, resolved, cell_size=eps)
        if resolved.name in _TREE_OK and len(points):
            return KDTreeIndex(points, resolved, leaf_size=leaf_size)
        if len(points) > 256:
            # Unknown (non-L_p) metric over a large set: the M-tree only
            # needs the triangle inequality, like the paper's fallback.
            return MTreeIndex(points, resolved, node_capacity=node_capacity)
        return BruteForceIndex(points, resolved)
    if kind == "brute":
        return BruteForceIndex(points, resolved)
    if kind == "grid":
        if eps is None or eps <= 0:
            raise ValueError("grid index needs a positive eps as cell-size hint")
        return GridIndex(points, resolved, cell_size=eps)
    if kind == "kdtree":
        return KDTreeIndex(points, resolved, leaf_size=leaf_size)
    if kind == "rtree":
        return RTreeIndex(points, resolved, node_capacity=node_capacity)
    if kind == "mtree":
        return MTreeIndex(points, resolved, node_capacity=node_capacity)
    raise ValueError(f"unknown index kind {kind!r}; known: {available_indexes()}")
