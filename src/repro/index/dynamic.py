"""A dynamic uniform-grid index supporting insertions and deletions.

Incremental DBSCAN (Ester et al., VLDB'98) — the algorithm the DBDC paper
names as the enabler for incremental local sites and for building the global
model while representatives are still arriving — needs an index whose
contents change over time.  The static indexes in this package are built
once; this grid keeps per-cell Python sets so points can be added and
removed in ``O(1)`` while range queries stay exact.

Indices handed out by :meth:`DynamicGridIndex.insert` are stable for the
lifetime of the structure; removed slots are tombstoned, never reused.
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from repro.data.distance import Metric, get_metric

__all__ = ["DynamicGridIndex"]

_GRID_METRICS = {"euclidean", "manhattan", "chebyshev", "squared_euclidean"}


class DynamicGridIndex:
    """Mutable exact neighbor index over a uniform grid.

    Args:
        dim: point dimensionality.
        cell_size: grid cell edge (pick the typical query radius).
        metric: an ``L_p``-style metric (ball bounded by its ``L_inf`` cube).

    Raises:
        ValueError: for invalid cell size / metric / dimension.
    """

    def __init__(
        self,
        dim: int,
        cell_size: float,
        metric: str | Metric = "euclidean",
    ) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._metric = get_metric(metric)
        if self._metric.name not in _GRID_METRICS:
            raise ValueError(
                f"DynamicGridIndex supports {sorted(_GRID_METRICS)}, "
                f"got {self._metric.name!r}"
            )
        self._dim = int(dim)
        self._cell_size = float(cell_size)
        self._cells: dict[tuple[int, ...], set[int]] = defaultdict(set)
        self._points: list[np.ndarray] = []
        self._alive: list[bool] = []
        self._n_alive = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _key(self, point: np.ndarray) -> tuple[int, ...]:
        return tuple(np.floor(point / self._cell_size).astype(np.int64))

    def insert(self, point: np.ndarray) -> int:
        """Add ``point``; returns its stable index."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self._dim,):
            raise ValueError(f"expected a ({self._dim},) point, got shape {point.shape}")
        idx = len(self._points)
        self._points.append(point)
        self._alive.append(True)
        self._cells[self._key(point)].add(idx)
        self._n_alive += 1
        return idx

    def remove(self, index: int) -> None:
        """Tombstone the point at ``index``.

        Raises:
            KeyError: if the index is unknown or already removed.
        """
        if not 0 <= index < len(self._points) or not self._alive[index]:
            raise KeyError(f"no live point with index {index}")
        self._alive[index] = False
        key = self._key(self._points[index])
        cell = self._cells[key]
        cell.discard(index)
        if not cell:
            del self._cells[key]
        self._n_alive -= 1

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_alive

    def __contains__(self, index: int) -> bool:
        return 0 <= index < len(self._points) and self._alive[index]

    @property
    def metric(self) -> Metric:
        """Metric the grid was built under."""
        return self._metric

    def point(self, index: int) -> np.ndarray:
        """Coordinates of a live point.

        Raises:
            KeyError: for dead/unknown indices.
        """
        if index not in self:
            raise KeyError(f"no live point with index {index}")
        return self._points[index]

    def live_indices(self) -> np.ndarray:
        """Sorted array of all live point indices."""
        return np.asarray(
            [i for i, alive in enumerate(self._alive) if alive], dtype=np.intp
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def range_query(self, query: np.ndarray, eps: float) -> np.ndarray:
        """Indices of live points within ``eps`` of ``query`` (sorted)."""
        if self._n_alive == 0:
            return np.empty(0, dtype=np.intp)
        query = np.asarray(query, dtype=float)
        low = np.floor((query - eps) / self._cell_size).astype(np.int64)
        high = np.floor((query + eps) / self._cell_size).astype(np.int64)
        cube = 1
        for lo, hi in zip(low, high):
            cube *= int(hi - lo) + 1
        candidates: list[int] = []
        if cube <= max(64, 4 * len(self._cells)):
            for key in _iter_cube(low, high):
                members = self._cells.get(key)
                if members:
                    candidates.extend(members)
        else:
            for key, members in self._cells.items():
                if all(lo <= k <= hi for k, lo, hi in zip(key, low, high)):
                    candidates.extend(members)
        if not candidates:
            return np.empty(0, dtype=np.intp)
        cand = np.asarray(candidates, dtype=np.intp)
        pts = np.asarray([self._points[i] for i in candidates])
        distances = self._metric.to_many(query, pts)
        hits = cand[distances <= eps]
        hits.sort()
        return hits

    # Same observability contract as NeighborIndex.attach_metrics; the
    # dynamic grid is not a NeighborIndex subclass, so it mirrors it.
    _obs_metrics = None

    def attach_metrics(self, metrics) -> None:
        """Record region-query metrics into ``metrics`` from now on."""
        self._obs_metrics = metrics

    def detach_metrics(self) -> None:
        """Stop recording (also drops the registry before pickling)."""
        self._obs_metrics = None

    def region_query(self, index: int, eps: float) -> np.ndarray:
        """``N_Eps`` of a live indexed point (includes the point itself)."""
        if self._obs_metrics is None:
            return self.range_query(self.point(index), eps)
        start = time.perf_counter()
        neighbors = self.range_query(self.point(index), eps)
        metrics = self._obs_metrics
        metrics.inc("index.region_queries", 1)
        metrics.inc("index.query_seconds", time.perf_counter() - start)
        metrics.observe("index.neighbors_per_query", neighbors.size)
        return neighbors

    def count_in_range(self, query: np.ndarray, eps: float) -> int:
        """Number of live points within ``eps`` of ``query``."""
        return int(self.range_query(query, eps).size)


def _iter_cube(low: np.ndarray, high: np.ndarray):
    """Yield every integer key tuple in the axis-aligned box [low, high]."""
    spans = [range(int(lo), int(hi) + 1) for lo, hi in zip(low, high)]

    def rec(i: int, prefix: tuple[int, ...]):
        if i == len(spans):
            yield prefix
            return
        for value in spans[i]:
            yield from rec(i + 1, prefix + (value,))

    yield from rec(0, ())
