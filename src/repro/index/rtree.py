"""A from-scratch R-tree with Sort-Tile-Recursive (STR) bulk loading.

The DBDC paper performs its region queries with R*-trees [Beckmann et al.,
SIGMOD'90].  For a reproduction that only ever bulk-loads a static point set
and then queries it, STR packing produces node layouts at least as good as
incremental R*-insertions, so we implement the packed variant: leaves hold
points, inner nodes hold minimum bounding rectangles (MBRs), and range
queries descend only into nodes whose MBR intersects the query ball's
bounding cube (then filter exactly by metric distance).
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.distance import Metric
from repro.index.base import NeighborIndex

__all__ = ["RTreeIndex"]


class _Node:
    """R-tree node: an MBR plus either child nodes or point indices."""

    __slots__ = ("lower", "upper", "children", "entries")

    def __init__(
        self,
        lower: np.ndarray,
        upper: np.ndarray,
        children: list["_Node"] | None,
        entries: np.ndarray | None,
    ) -> None:
        self.lower = lower
        self.upper = upper
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class RTreeIndex(NeighborIndex):
    """Packed R-tree (STR bulk load) over a static point set.

    Args:
        points: array of shape ``(n, d)``.
        metric: any ``L_p``-style metric; MBR pruning uses the ``L_inf``
            bounding cube of the query ball, which contains the ball for all
            of them.
        node_capacity: maximum fanout of leaves and inner nodes.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: str | Metric = "euclidean",
        *,
        node_capacity: int = 32,
    ) -> None:
        super().__init__(points, metric)
        if node_capacity < 2:
            raise ValueError(f"node_capacity must be >= 2, got {node_capacity}")
        self._capacity = int(node_capacity)
        self._root: _Node | None = None
        if len(self):
            leaves = self._pack_leaves()
            self._root = self._pack_levels(leaves)

    # ------------------------------------------------------------------
    # STR bulk load
    # ------------------------------------------------------------------
    def _pack_leaves(self) -> list[_Node]:
        order = self._str_order(self._points, np.arange(len(self), dtype=np.intp))
        leaves = []
        for start in range(0, order.size, self._capacity):
            entries = order[start : start + self._capacity]
            pts = self._points[entries]
            leaves.append(_Node(pts.min(axis=0), pts.max(axis=0), None, entries))
        return leaves

    def _str_order(self, points: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Recursively sort-tile ``indices`` so consecutive runs are compact."""
        d = points.shape[1]
        n = indices.size
        leaf_count = math.ceil(n / self._capacity)

        def tile(idx: np.ndarray, dim: int) -> np.ndarray:
            if dim >= d - 1 or idx.size <= self._capacity:
                return idx[np.argsort(points[idx, dim], kind="stable")]
            remaining_dims = d - dim
            slabs = max(1, math.ceil(leaf_count ** (1.0 / remaining_dims) * idx.size / n))
            idx = idx[np.argsort(points[idx, dim], kind="stable")]
            slab_size = math.ceil(idx.size / slabs)
            parts = [
                tile(idx[s : s + slab_size], dim + 1)
                for s in range(0, idx.size, slab_size)
            ]
            return np.concatenate(parts)

        return tile(indices, 0)

    def _pack_levels(self, nodes: list[_Node]) -> _Node:
        while len(nodes) > 1:
            centers = np.asarray([(node.lower + node.upper) / 2.0 for node in nodes])
            order = np.lexsort(centers.T[::-1])
            next_level = []
            for start in range(0, len(nodes), self._capacity):
                group = [nodes[i] for i in order[start : start + self._capacity]]
                lower = np.minimum.reduce([g.lower for g in group])
                upper = np.maximum.reduce([g.upper for g in group])
                next_level.append(_Node(lower, upper, group, None))
            nodes = next_level
        return nodes[0]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of levels in the tree (0 for an empty index)."""
        node, levels = self._root, 0
        while node is not None:
            levels += 1
            node = None if node.is_leaf else node.children[0]
        return levels

    def range_query(self, query: np.ndarray, eps: float) -> np.ndarray:
        if self._root is None:
            return np.empty(0, dtype=np.intp)
        query = np.asarray(query, dtype=float)
        low = query - eps
        high = query + eps
        hits: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if np.any(node.lower > high) or np.any(node.upper < low):
                continue
            if node.is_leaf:
                entries = node.entries
                distances = self._metric.to_many(query, self._points[entries])
                match = entries[distances <= eps]
                if match.size:
                    hits.append(match)
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=np.intp)
        out = np.concatenate(hits)
        out.sort()
        return out
