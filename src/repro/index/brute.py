"""Brute-force neighbor index.

The reference implementation of :class:`~repro.index.base.NeighborIndex`:
every range query scans the full point set with the metric's vectorized
one-to-many kernel.  It is the correctness oracle the other indexes are
tested against and the fallback for metrics that no spatial index supports
(e.g. arbitrary registered metrics that are not translation-invariant in a
way a grid could exploit).

Batched queries (``range_query_batch``) avoid one full scan per query: the
index lazily sorts the points along their widest coordinate once, prunes
each query's candidate set to the slab ``|x_dim - q_dim| <= eps`` with two
``searchsorted`` calls, and evaluates only the survivors.  The per-axis
distance lower-bounds every ``L_p`` metric, so the pruned scan is exact, and
survivors are re-evaluated with the same ``to_many`` kernel as the single
query path, so results are bitwise identical.  Metrics outside the ``L_p``
family fall back to one full ``to_many`` sweep per query.
"""

from __future__ import annotations

import numpy as np

from repro.data.distance import Metric
from repro.index.base import NeighborIndex, _as_query_batch

__all__ = ["BruteForceIndex"]

# Metrics for which the per-coordinate distance lower-bounds the metric
# distance, making the sorted-projection pruning exact.
_PROJECTION_METRICS = {"euclidean", "manhattan", "chebyshev", "squared_euclidean"}


class BruteForceIndex(NeighborIndex):
    """Exact neighbor index via a full linear scan per query.

    Works with every metric, costs ``O(n)`` per query and ``O(1)`` build
    time.  Within DBSCAN this gives the ``O(n^2)`` end of the complexity
    range discussed in the paper (Section 9.1).  Batched queries sort the
    point set lazily (once) to prune candidates, see the module docstring.
    """

    def __init__(self, points: np.ndarray, metric: str | Metric = "euclidean") -> None:
        super().__init__(points, metric)
        self._proj_order: np.ndarray | None = None
        self._proj_values: np.ndarray | None = None
        self._proj_points: np.ndarray | None = None
        self._proj_dim = -1

    def range_query(self, query: np.ndarray, eps: float) -> np.ndarray:
        if len(self) == 0:
            return np.empty(0, dtype=np.intp)
        distances = self._metric.to_many(np.asarray(query, dtype=float), self._points)
        return np.flatnonzero(distances <= eps)

    def _projection_reach(self, eps: float) -> float | None:
        """Slab half-width for projection pruning, ``None`` if unsupported.

        ``squared_euclidean`` thresholds the *squared* distance, so its
        coordinate reach is ``sqrt(eps)``; the true metrics use ``eps``.
        """
        name = self._metric.name
        if name == "squared_euclidean":
            return float(np.sqrt(max(eps, 0.0)))
        if name in _PROJECTION_METRICS or name.startswith("minkowski"):
            return float(max(eps, 0.0))
        return None

    def _ensure_projection(self) -> None:
        if self._proj_order is not None:
            return
        spread = self._points.max(axis=0) - self._points.min(axis=0)
        self._proj_dim = int(np.argmax(spread))
        self._proj_order = np.argsort(self._points[:, self._proj_dim], kind="stable")
        self._proj_points = self._points[self._proj_order]
        self._proj_values = self._proj_points[:, self._proj_dim]

    def range_query_batch(self, queries: np.ndarray, eps: float) -> list[np.ndarray]:
        dim = self._points.shape[1] if self._points.ndim == 2 else 0
        queries = _as_query_batch(queries, dim)
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        if len(self) == 0:
            return [np.empty(0, dtype=np.intp) for _ in range(n_queries)]
        reach = self._projection_reach(eps)
        if reach is None:
            # Non-L_p metric: no valid coordinate bound, full scan per query.
            return [self.range_query(query, eps) for query in queries]
        self._ensure_projection()
        assert self._proj_values is not None  # for type checkers
        projected = queries[:, self._proj_dim]
        lo = np.searchsorted(self._proj_values, projected - reach, side="left")
        hi = np.searchsorted(self._proj_values, projected + reach, side="right")
        out: list[np.ndarray] = []
        for i in range(n_queries):
            if lo[i] >= hi[i]:
                out.append(np.empty(0, dtype=np.intp))
                continue
            candidates = self._proj_order[lo[i]:hi[i]]
            distances = self._metric.to_many(queries[i], self._proj_points[lo[i]:hi[i]])
            hits = candidates[distances <= eps]
            hits.sort()
            out.append(hits)
        return out
