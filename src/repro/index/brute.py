"""Brute-force neighbor index.

The reference implementation of :class:`~repro.index.base.NeighborIndex`:
every range query scans the full point set with the metric's vectorized
one-to-many kernel.  It is the correctness oracle the other indexes are
tested against and the fallback for metrics that no spatial index supports
(e.g. arbitrary registered metrics that are not translation-invariant in a
way a grid could exploit).
"""

from __future__ import annotations

import numpy as np

from repro.data.distance import Metric
from repro.index.base import NeighborIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(NeighborIndex):
    """Exact neighbor index via a full linear scan per query.

    Works with every metric, costs ``O(n)`` per query and ``O(1)`` build
    time.  Within DBSCAN this gives the ``O(n^2)`` end of the complexity
    range discussed in the paper (Section 9.1).
    """

    def __init__(self, points: np.ndarray, metric: str | Metric = "euclidean") -> None:
        super().__init__(points, metric)

    def range_query(self, query: np.ndarray, eps: float) -> np.ndarray:
        if len(self) == 0:
            return np.empty(0, dtype=np.intp)
        distances = self._metric.to_many(np.asarray(query, dtype=float), self._points)
        return np.flatnonzero(distances <= eps)
