"""Uniform grid index.

The workhorse index of this reproduction.  DBSCAN issues region queries with
one fixed radius ``Eps``; a uniform grid whose cell edge equals that radius
answers each query by scanning only the ``3^d`` cells surrounding the query
point.  For the low-dimensional data sets of the paper (2-D point sets A, B,
C) this is the fastest exact structure by a wide margin and plays the role
the R*-tree played in the original system.

The grid supports arbitrary query radii as well (it scans
``ceil(eps / cell)`` rings of cells), so OPTICS and the global clustering can
reuse it with radii different from the build radius — only the constant
factor changes, never correctness.

Cell storage is structure-of-arrays in CSR style: one flat ``intp`` array
holds every point index grouped by cell (ascending within each cell), and a
``cell key -> (start, stop)`` table slices into it.  The layout is built in
one vectorized ``lexsort`` pass — no per-point python loop, no per-cell list
objects — so a 10^6-point build is a sort, not a million dict appends, and a
multi-cell gather is a handful of array slices instead of list concatenation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.distance import Metric
from repro.index.base import NeighborIndex, _as_query_batch

__all__ = ["GridIndex"]

_GRID_METRICS = {"euclidean", "manhattan", "chebyshev", "squared_euclidean"}


class GridIndex(NeighborIndex):
    """Exact neighbor index over a uniform grid of cube-shaped cells.

    Args:
        points: array of shape ``(n, d)``.
        metric: metric name or instance.  Must be one of the translation-
            invariant ``L_p``-style metrics whose balls are bounded by
            ``L_inf`` cubes (euclidean, manhattan, chebyshev); other metrics
            should use :class:`~repro.index.brute.BruteForceIndex`.
        cell_size: edge length of a grid cell.  Choose the typical query
            radius (DBSCAN's ``Eps``) for single-ring queries.

    Raises:
        ValueError: if ``cell_size`` is not positive or the metric is not
            grid-compatible.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: str | Metric = "euclidean",
        *,
        cell_size: float,
    ) -> None:
        super().__init__(points, metric)
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        if self._metric.name not in _GRID_METRICS:
            raise ValueError(
                f"GridIndex supports metrics {sorted(_GRID_METRICS)}, "
                f"got {self._metric.name!r}"
            )
        self._cell_size = float(cell_size)
        # CSR cell storage: ``_flat`` holds point indices grouped by cell,
        # ``_cells`` maps a cell's integer coordinates to its
        # ``(start, stop)`` slice of ``_flat``.
        self._flat: np.ndarray = np.empty(0, dtype=np.intp)
        self._cells: dict[tuple[int, ...], tuple[int, int]] = {}
        if len(self) > 0:
            self._origin = self._points.min(axis=0)
            coords = np.floor(
                (self._points - self._origin) / self._cell_size
            ).astype(np.int64)
            self._flat, self._cells = _build_csr(coords)
        else:
            self._origin = np.zeros(points.shape[1] if points.ndim == 2 else 0)

    @property
    def cell_size(self) -> float:
        """Edge length of one grid cell."""
        return self._cell_size

    @property
    def n_occupied_cells(self) -> int:
        """Number of non-empty grid cells."""
        return len(self._cells)

    def _gather_cells(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """All point indices in the occupied cells of the box ``[low, high]``."""
        spans = [range(int(lo), int(hi) + 1) for lo, hi in zip(low, high)]
        total_cells = math.prod(len(span) for span in spans)
        if total_cells > max(4 * len(self._cells), 64):
            # The query cube covers more cells than exist: iterate occupied
            # cells instead of the (possibly huge) cartesian product.
            slices = [
                bounds
                for key, bounds in self._cells.items()
                if all(lo <= k <= hi for k, lo, hi in zip(key, low, high))
            ]
        else:
            slices = []
            for key in _iter_keys(spans):
                bounds = self._cells.get(key)
                if bounds is not None:
                    slices.append(bounds)
        if not slices:
            return np.empty(0, dtype=np.intp)
        return np.concatenate([self._flat[start:stop] for start, stop in slices])

    def _coordinate_reach(self, eps: float) -> float:
        """Half-width of the ``L_inf`` cube containing the ``eps``-ball.

        For euclidean/manhattan/chebyshev that is ``eps`` itself; for
        squared_euclidean the ball of squared radius ``eps`` has coordinate
        half-width ``sqrt(eps)`` (larger than ``eps`` when ``eps < 1`` —
        using ``eps`` there would silently drop true neighbors).
        """
        if eps <= 0:
            return 0.0
        if self._metric.name == "squared_euclidean":
            return math.sqrt(eps)
        return eps

    def _candidate_indices(self, query: np.ndarray, eps: float) -> np.ndarray:
        """All point indices in cells intersecting the ``eps``-cube of ``query``."""
        # The eps-ball of every supported metric is contained in the
        # L_inf cube of half-width _coordinate_reach(eps), so scanning the
        # cells overlapping that cube is sufficient for exactness.
        reach = self._coordinate_reach(eps)
        low = np.floor((query - reach - self._origin) / self._cell_size).astype(np.int64)
        high = np.floor((query + reach - self._origin) / self._cell_size).astype(np.int64)
        return self._gather_cells(low, high)

    def range_query(self, query: np.ndarray, eps: float) -> np.ndarray:
        if len(self) == 0:
            return np.empty(0, dtype=np.intp)
        query = np.asarray(query, dtype=float)
        candidates = self._candidate_indices(query, eps)
        if candidates.size == 0:
            return candidates
        distances = self._metric.to_many(query, self._points[candidates])
        hits = candidates[distances <= eps]
        hits.sort()
        return hits

    def range_query_batch(
        self,
        queries: np.ndarray,
        eps: float,
        *,
        return_distances: bool = False,
    ) -> list[np.ndarray] | tuple[list[np.ndarray], list[np.ndarray]]:
        """Vectorized batch queries: group by grid cell, evaluate per group.

        Queries living in the same cell share one candidate neighborhood
        (the occupied cells within ``ceil(eps / cell)`` rings — a superset
        of each individual query's ``eps``-cube, so exactness is
        preserved), which is gathered once and evaluated with a single
        vectorized distance-matrix call per group.

        Args:
            queries: ``(m, d)`` query points.
            eps: query radius.
            return_distances: also return each query's hit distances.  A
                ``Metric.matrix`` row is bitwise equal to the
                corresponding ``Metric.to_many`` call (same subtraction
                and reduction order), so callers get the exact per-query
                distances for free instead of recomputing them — this is
                what the vectorized relabel kernel builds on.

        Returns:
            The per-query hit arrays, or ``(hits, distances)`` lists when
            ``return_distances`` is true (``distances[i]`` aligned with
            ``hits[i]``).
        """
        dim = self._points.shape[1] if self._points.ndim == 2 else 0
        queries = _as_query_batch(queries, dim)
        n_queries = queries.shape[0]
        empty = np.empty(0, dtype=np.intp)
        empty_distances = np.empty(0, dtype=float)
        out: list[np.ndarray] = [empty] * n_queries
        distances_out: list[np.ndarray] = [empty_distances] * n_queries
        if n_queries == 0 or len(self) == 0:
            return (out, distances_out) if return_distances else out
        reach = self._coordinate_reach(eps)
        reach_cells = int(math.ceil(reach / self._cell_size)) if reach > 0 else 0
        coords = np.floor((queries - self._origin) / self._cell_size).astype(np.int64)
        for key, members in _group_rows(coords).items():
            cell = np.asarray(key, dtype=np.int64)
            candidates = self._gather_cells(cell - reach_cells, cell + reach_cells)
            if candidates.size == 0:
                continue
            candidates.sort()
            distances = self._metric.matrix(queries[members], self._points[candidates])
            rows, cols = np.nonzero(distances <= eps)
            bounds = np.searchsorted(rows, np.arange(len(members) + 1))
            values = distances[rows, cols] if return_distances else None
            for r, i in enumerate(members):
                span = slice(bounds[r], bounds[r + 1])
                out[i] = candidates[cols[span]]
                if values is not None:
                    distances_out[i] = values[span]
        return (out, distances_out) if return_distances else out


def _build_csr(
    coords: np.ndarray,
) -> tuple[np.ndarray, dict[tuple[int, ...], tuple[int, int]]]:
    """Group row indices of ``coords`` by identical rows, vectorized.

    Returns the flat point-index array (grouped by cell, ascending within
    each cell thanks to the stable sort) and the ``key -> (start, stop)``
    slice table over it.
    """
    n = coords.shape[0]
    if coords.ndim != 2 or coords.shape[1] == 0:
        # Zero-dimensional points: everything lives in the single () cell.
        return np.arange(n, dtype=np.intp), {(): (0, n)}
    # lexsort keys run last-to-first, so reversing the columns sorts rows
    # lexicographically; the sort is stable, keeping point indices
    # ascending inside each cell (the order the old per-cell lists had).
    order = np.lexsort(coords.T[::-1]).astype(np.intp)
    sorted_coords = coords[order]
    change = np.any(sorted_coords[1:] != sorted_coords[:-1], axis=1)
    starts = np.concatenate(([0], np.flatnonzero(change) + 1))
    stops = np.concatenate((starts[1:], [n]))
    cells = {
        key: bounds
        for key, bounds in zip(
            map(tuple, sorted_coords[starts].tolist()),
            zip(starts.tolist(), stops.tolist()),
        )
    }
    return order, cells


def _group_rows(coords: np.ndarray) -> dict[tuple[int, ...], list[int]]:
    """Group query indices by identical coordinate rows (batch planning)."""
    groups: dict[tuple[int, ...], list[int]] = {}
    for i, key in enumerate(map(tuple, coords.tolist())):
        groups.setdefault(key, []).append(i)
    return groups


def _iter_keys(spans: list[range]):
    """Yield every integer coordinate tuple in the cartesian product of spans."""
    if not spans:
        yield ()
        return
    head, *tail = spans
    for value in head:
        for rest in _iter_keys(tail):
            yield (value, *rest)
