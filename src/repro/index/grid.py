"""Uniform grid index.

The workhorse index of this reproduction.  DBSCAN issues region queries with
one fixed radius ``Eps``; a uniform grid whose cell edge equals that radius
answers each query by scanning only the ``3^d`` cells surrounding the query
point.  For the low-dimensional data sets of the paper (2-D point sets A, B,
C) this is the fastest exact structure by a wide margin and plays the role
the R*-tree played in the original system.

The grid supports arbitrary query radii as well (it scans
``ceil(eps / cell)`` rings of cells), so OPTICS and the global clustering can
reuse it with radii different from the build radius — only the constant
factor changes, never correctness.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.data.distance import Metric
from repro.index.base import NeighborIndex, _as_query_batch

__all__ = ["GridIndex"]

_GRID_METRICS = {"euclidean", "manhattan", "chebyshev", "squared_euclidean"}


class GridIndex(NeighborIndex):
    """Exact neighbor index over a uniform grid of cube-shaped cells.

    Args:
        points: array of shape ``(n, d)``.
        metric: metric name or instance.  Must be one of the translation-
            invariant ``L_p``-style metrics whose balls are bounded by
            ``L_inf`` cubes (euclidean, manhattan, chebyshev); other metrics
            should use :class:`~repro.index.brute.BruteForceIndex`.
        cell_size: edge length of a grid cell.  Choose the typical query
            radius (DBSCAN's ``Eps``) for single-ring queries.

    Raises:
        ValueError: if ``cell_size`` is not positive or the metric is not
            grid-compatible.
    """

    def __init__(
        self,
        points: np.ndarray,
        metric: str | Metric = "euclidean",
        *,
        cell_size: float,
    ) -> None:
        super().__init__(points, metric)
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        if self._metric.name not in _GRID_METRICS:
            raise ValueError(
                f"GridIndex supports metrics {sorted(_GRID_METRICS)}, "
                f"got {self._metric.name!r}"
            )
        self._cell_size = float(cell_size)
        self._cells: dict[tuple[int, ...], np.ndarray] = {}
        if len(self) > 0:
            self._origin = self._points.min(axis=0)
            coords = np.floor((self._points - self._origin) / self._cell_size).astype(np.int64)
            buckets: dict[tuple[int, ...], list[int]] = defaultdict(list)
            for i, key in enumerate(map(tuple, coords)):
                buckets[key].append(i)
            self._cells = {key: np.asarray(idx, dtype=np.intp) for key, idx in buckets.items()}
        else:
            self._origin = np.zeros(points.shape[1] if points.ndim == 2 else 0)

    @property
    def cell_size(self) -> float:
        """Edge length of one grid cell."""
        return self._cell_size

    @property
    def n_occupied_cells(self) -> int:
        """Number of non-empty grid cells."""
        return len(self._cells)

    def _gather_cells(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """All point indices in the occupied cells of the box ``[low, high]``."""
        spans = [range(int(lo), int(hi) + 1) for lo, hi in zip(low, high)]
        total_cells = math.prod(len(span) for span in spans)
        if total_cells > max(4 * len(self._cells), 64):
            # The query cube covers more cells than exist: iterate occupied
            # cells instead of the (possibly huge) cartesian product.
            chunks = [
                idx
                for key, idx in self._cells.items()
                if all(lo <= k <= hi for k, lo, hi in zip(key, low, high))
            ]
        else:
            chunks = []
            for key in _iter_keys(spans):
                idx = self._cells.get(key)
                if idx is not None:
                    chunks.append(idx)
        if not chunks:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(chunks)

    def _coordinate_reach(self, eps: float) -> float:
        """Half-width of the ``L_inf`` cube containing the ``eps``-ball.

        For euclidean/manhattan/chebyshev that is ``eps`` itself; for
        squared_euclidean the ball of squared radius ``eps`` has coordinate
        half-width ``sqrt(eps)`` (larger than ``eps`` when ``eps < 1`` —
        using ``eps`` there would silently drop true neighbors).
        """
        if eps <= 0:
            return 0.0
        if self._metric.name == "squared_euclidean":
            return math.sqrt(eps)
        return eps

    def _candidate_indices(self, query: np.ndarray, eps: float) -> np.ndarray:
        """All point indices in cells intersecting the ``eps``-cube of ``query``."""
        # The eps-ball of every supported metric is contained in the
        # L_inf cube of half-width _coordinate_reach(eps), so scanning the
        # cells overlapping that cube is sufficient for exactness.
        reach = self._coordinate_reach(eps)
        low = np.floor((query - reach - self._origin) / self._cell_size).astype(np.int64)
        high = np.floor((query + reach - self._origin) / self._cell_size).astype(np.int64)
        return self._gather_cells(low, high)

    def range_query(self, query: np.ndarray, eps: float) -> np.ndarray:
        if len(self) == 0:
            return np.empty(0, dtype=np.intp)
        query = np.asarray(query, dtype=float)
        candidates = self._candidate_indices(query, eps)
        if candidates.size == 0:
            return candidates
        distances = self._metric.to_many(query, self._points[candidates])
        hits = candidates[distances <= eps]
        hits.sort()
        return hits

    def range_query_batch(self, queries: np.ndarray, eps: float) -> list[np.ndarray]:
        """Vectorized batch queries: group by grid cell, evaluate per group.

        Queries living in the same cell share one candidate neighborhood
        (the occupied cells within ``ceil(eps / cell)`` rings — a superset
        of each individual query's ``eps``-cube, so exactness is
        preserved), which is gathered once and evaluated with a single
        vectorized distance-matrix call per group.
        """
        dim = self._points.shape[1] if self._points.ndim == 2 else 0
        queries = _as_query_batch(queries, dim)
        n_queries = queries.shape[0]
        if n_queries == 0:
            return []
        empty = np.empty(0, dtype=np.intp)
        if len(self) == 0:
            return [empty for _ in range(n_queries)]
        reach = self._coordinate_reach(eps)
        reach_cells = int(math.ceil(reach / self._cell_size)) if reach > 0 else 0
        coords = np.floor((queries - self._origin) / self._cell_size).astype(np.int64)
        groups: dict[tuple[int, ...], list[int]] = defaultdict(list)
        for i, key in enumerate(map(tuple, coords)):
            groups[key].append(i)
        out: list[np.ndarray] = [empty] * n_queries
        for key, members in groups.items():
            cell = np.asarray(key, dtype=np.int64)
            candidates = self._gather_cells(cell - reach_cells, cell + reach_cells)
            if candidates.size == 0:
                continue
            candidates.sort()
            distances = self._metric.matrix(queries[members], self._points[candidates])
            rows, cols = np.nonzero(distances <= eps)
            bounds = np.searchsorted(rows, np.arange(len(members) + 1))
            for r, i in enumerate(members):
                out[i] = candidates[cols[bounds[r]:bounds[r + 1]]]
        return out


def _iter_keys(spans: list[range]):
    """Yield every integer coordinate tuple in the cartesian product of spans."""
    if not spans:
        yield ()
        return
    head, *tail = spans
    for value in head:
        for rest in _iter_keys(tail):
            yield (value, *rest)
